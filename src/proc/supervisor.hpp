// Supervisor: heartbeat-based peer-death detection for machine processes.
//
// The socket transport owns the wire; the supervisor owns the *processes*.
// It keeps, per machine, the child's pid and the time its last heartbeat
// (or any other frame) was seen, and a monitor thread turns two signals
// into one death verdict:
//
//   * heartbeat silence past `heartbeat_timeout_us` — the process is wedged
//     or the wire is dead even though the socket looks open;
//   * process exit (waitpid WNOHANG) — a crash or kill -9 reaped directly.
//
// The transport adds a third signal, connection_lost(), when a read returns
// EOF or the stream turns malformed. All three funnel into declare_dead(),
// which fires the installed death hook exactly once per incarnation — the
// hook is how a dead process becomes a protocol-level crash (the cluster
// maps it onto the existing crash/view-change path).
//
// Clean shutdown uses expect_exit() first, so the planned EOF/exit of a
// drained child never masquerades as a failure.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace paso::proc {

class Supervisor {
 public:
  /// reason is one of "heartbeat-timeout", "process-exited",
  /// "connection-lost", or "protocol-error: <detail>".
  using DeathHook =
      std::function<void(std::uint32_t machine, const std::string& reason)>;

  Supervisor(std::size_t machines, long heartbeat_timeout_us);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Install before start(). Fired from the monitor thread or from the
  /// caller of connection_lost(); never with internal locks held.
  void set_death_hook(DeathHook hook) { hook_ = std::move(hook); }

  /// Register a (re)spawned child and start the clock on its heartbeats.
  void adopt(std::uint32_t machine, int pid);

  /// Start / stop the monitor thread. stop() also reaps every child still
  /// registered (SIGKILL escalation after a short grace period) so no
  /// zombies outlive the transport.
  void start();
  void stop();

  /// Liveness signals from the wire (any frame counts as a heartbeat).
  void beat(std::uint32_t machine);
  /// The wire died (EOF / malformed stream): declare the peer dead now.
  void connection_lost(std::uint32_t machine, const std::string& reason);

  /// Mark the machine's planned exit: its EOF/exit is reaped silently.
  void expect_exit(std::uint32_t machine);
  /// Mark every machine's exit as planned (shutdown path).
  void expect_all_exits();

  bool alive(std::uint32_t machine) const;
  int pid_of(std::uint32_t machine) const;
  /// SIGKILL the child (test harness for the crash-fault model).
  void kill_hard(std::uint32_t machine);

  std::uint64_t deaths() const { return deaths_.load(); }

 private:
  enum class State { kEmpty, kRunning, kDead, kDetached };
  struct Child {
    int pid = -1;
    State state = State::kEmpty;
    std::chrono::steady_clock::time_point last_seen{};
  };

  void monitor_loop();
  /// Transition to kDead and fire the hook (once); no-op in other states.
  void declare_dead(std::uint32_t machine, const std::string& reason);
  static void reap(int pid, bool force);

  const long heartbeat_timeout_us_;
  DeathHook hook_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Child> children_;
  std::atomic<std::uint64_t> deaths_{0};
  bool stopping_ = false;
  std::thread monitor_;
};

}  // namespace paso::proc
