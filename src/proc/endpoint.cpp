#include "proc/endpoint.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <string>
#include <thread>

#include "net/frame.hpp"

namespace paso::proc {

namespace {

using net::Frame;
using net::FrameDecoder;
using net::FrameType;

using Clock = std::chrono::steady_clock;

/// Outbound high-water mark: stop emitting acks while this many bytes are
/// already waiting for the broker to read, so a stalled broker bounds the
/// child's memory too.
constexpr std::size_t kOutHighWater = 1u << 20;

int connect_to_broker(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // The broker listens before spawning, so one attempt normally succeeds;
  // retry briefly to ride out a slow accept queue.
  for (int attempt = 0; attempt < 100; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

/// Nonblocking-safe write of as much of [buf+off, end) as the socket takes.
/// Returns false on a dead connection.
bool flush_some(int fd, const std::string& buf, std::size_t& off) {
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

int machine_endpoint_main(const EndpointConfig& config) {
  const int fd = connect_to_broker(config.port);
  if (fd < 0) return 2;

  // One decoder for the connection's whole life: the broker may coalesce
  // the HelloAck and the first kMsg frames into a single TCP segment, so
  // bytes fed during the handshake can already hold post-handshake frames —
  // a second decoder would silently swallow them. The endpoint acks kMsg
  // frames by seq and never reads the filler payload, so skip extracting
  // it: no per-frame allocation on the hot path.
  FrameDecoder decoder;
  decoder.set_skip_payload(true);

  // Handshake (still blocking): Hello out, HelloAck back.
  {
    std::string hello;
    Frame frame;
    frame.type = FrameType::kHello;
    frame.machine = config.machine;
    frame.seq = config.token;
    net::encode_frame(frame, hello);
    std::size_t off = 0;
    while (off < hello.size()) {
      const ssize_t n =
          ::send(fd, hello.data() + off, hello.size() - off, MSG_NOSIGNAL);
      if (n <= 0 && errno != EINTR) {
        ::close(fd);
        return 2;
      }
      if (n > 0) off += static_cast<std::size_t>(n);
    }
    bool acked = false;
    while (!acked) {
      char buf[256];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        ::close(fd);
        return 2;  // broker rejected us (bad token) or died
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
      for (;;) {
        const net::DecodeResult r = decoder.next();
        if (r.error != net::FrameErrorKind::kNone) {
          ::close(fd);
          return 3;
        }
        if (!r.has_frame) break;
        if (r.frame.type == FrameType::kHelloAck) {
          acked = true;
          break;
        }
      }
    }
  }

  // Main loop: nonblocking from here on.
  {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  std::deque<std::uint64_t> ingress;  // kMsg seqs awaiting their ack
  std::string outbuf;
  std::size_t out_off = 0;
  bool draining = false;

  // Frames already buffered (or newly fed) in the decoder become ingress
  // entries / state flags; false means the stream is corrupt.
  const auto drain_decoder = [&]() -> bool {
    for (;;) {
      const net::DecodeResult r = decoder.next();
      if (r.error != net::FrameErrorKind::kNone) return false;
      if (!r.has_frame) return true;
      switch (r.frame.type) {
        case FrameType::kMsg:
          ingress.push_back(r.frame.seq);
          break;
        case FrameType::kShutdown:
          draining = true;
          break;
        default:
          break;  // HelloAck duplicates etc. are harmless
      }
    }
  };
  // Frames that rode in on the same segment as the HelloAck.
  if (!drain_decoder()) {
    ::close(fd);
    return 3;
  }
  const auto interval = std::chrono::microseconds(
      config.heartbeat_interval_us > 0 ? config.heartbeat_interval_us
                                       : 25'000);
  Clock::time_point next_beat = Clock::now();

  for (;;) {
    // Beacon first so a long poll below cannot starve liveness.
    const Clock::time_point now = Clock::now();
    if (now >= next_beat) {
      Frame beat;
      beat.type = FrameType::kHeartbeat;
      beat.machine = config.machine;
      net::encode_frame(beat, outbuf);
      next_beat = now + interval;
    }

    // Ack phase: FIFO drain of the ingress, bounded by the out high-water.
    while (!ingress.empty() && outbuf.size() - out_off < kOutHighWater) {
      Frame ack;
      ack.type = FrameType::kDeliver;
      ack.machine = config.machine;
      ack.seq = ingress.front();
      ingress.pop_front();
      net::encode_frame(ack, outbuf);
    }
    if (out_off > 0 && out_off == outbuf.size()) {
      outbuf.clear();
      out_off = 0;
    }

    if (draining && ingress.empty()) {
      Frame bye;
      bye.type = FrameType::kBye;
      bye.machine = config.machine;
      net::encode_frame(bye, outbuf);
      // Best-effort flush with a short deadline, then leave: the broker
      // treats EOF after shutdown as a clean exit too.
      const Clock::time_point deadline =
          Clock::now() + std::chrono::seconds(2);
      while (out_off < outbuf.size() && Clock::now() < deadline) {
        if (!flush_some(fd, outbuf, out_off)) break;
        if (out_off < outbuf.size()) {
          pollfd pw{fd, POLLOUT, 0};
          ::poll(&pw, 1, 50);
        }
      }
      ::close(fd);
      return 0;
    }

    pollfd p{};
    p.fd = fd;
    p.events = 0;
    // Backpressure-aware read: a full ingress parks POLLIN, so the kernel
    // receive buffer fills and TCP carrier-senses back onto the broker.
    if (ingress.size() < config.ingress_capacity) p.events |= POLLIN;
    if (out_off < outbuf.size()) p.events |= POLLOUT;
    const auto until_beat = std::chrono::duration_cast<std::chrono::milliseconds>(
        next_beat - Clock::now());
    const int timeout_ms =
        static_cast<int>(until_beat.count() < 0 ? 0 : until_beat.count()) + 1;
    const int ready = ::poll(&p, 1, timeout_ms);
    if (ready < 0 && errno != EINTR) {
      ::close(fd);
      return 3;
    }

    if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
      // Broker side gone: for a machine process that is a clean end of life.
      ::close(fd);
      return 0;
    }
    if (p.revents & POLLOUT) {
      if (!flush_some(fd, outbuf, out_off)) {
        ::close(fd);
        return 0;
      }
    }
    if (p.revents & POLLIN) {
      char buf[65536];
      for (;;) {
        if (ingress.size() >= config.ingress_capacity) break;
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n == 0) {
          ::close(fd);
          return 0;  // broker closed: clean exit
        }
        if (n < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          ::close(fd);
          return 0;
        }
        decoder.feed(buf, static_cast<std::size_t>(n));
        if (!drain_decoder()) {
          ::close(fd);
          return 3;  // corrupt stream: die loudly, the supervisor notices
        }
      }
    }
  }
}

}  // namespace paso::proc
