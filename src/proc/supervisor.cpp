#include "proc/supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>

#include <cerrno>
#include <utility>

namespace paso::proc {

using Clock = std::chrono::steady_clock;

Supervisor::Supervisor(std::size_t machines, long heartbeat_timeout_us)
    : heartbeat_timeout_us_(heartbeat_timeout_us), children_(machines) {}

Supervisor::~Supervisor() { stop(); }

void Supervisor::adopt(std::uint32_t machine, int pid) {
  std::lock_guard<std::mutex> lock(mu_);
  Child& child = children_.at(machine);
  child.pid = pid;
  child.state = State::kRunning;
  child.last_seen = Clock::now();
}

void Supervisor::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (monitor_.joinable()) return;
  stopping_ = false;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Supervisor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  // Reap everything still registered. Children told to shut down exit on
  // their own; anything else gets escalated so no zombie outlives us.
  std::vector<int> pids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Child& child : children_) {
      if (child.pid > 0) pids.push_back(child.pid);
      child.pid = -1;
      child.state = State::kEmpty;
    }
  }
  for (const int pid : pids) reap(pid, /*force=*/true);
}

void Supervisor::reap(int pid, bool force) {
  // A short grace period for a clean exit, then SIGKILL and a blocking wait
  // (the process is gone at that point, so the wait is immediate).
  for (int i = 0; i < 40; ++i) {
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid || (r < 0 && errno == ECHILD)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (force) {
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
}

void Supervisor::beat(std::uint32_t machine) {
  std::lock_guard<std::mutex> lock(mu_);
  if (machine < children_.size()) {
    children_[machine].last_seen = Clock::now();
  }
}

void Supervisor::connection_lost(std::uint32_t machine,
                                 const std::string& reason) {
  declare_dead(machine, reason);
}

void Supervisor::expect_exit(std::uint32_t machine) {
  std::lock_guard<std::mutex> lock(mu_);
  if (machine < children_.size() &&
      children_[machine].state == State::kRunning) {
    children_[machine].state = State::kDetached;
  }
}

void Supervisor::expect_all_exits() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Child& child : children_) {
    if (child.state == State::kRunning) child.state = State::kDetached;
  }
}

bool Supervisor::alive(std::uint32_t machine) const {
  std::lock_guard<std::mutex> lock(mu_);
  return machine < children_.size() &&
         children_[machine].state == State::kRunning;
}

int Supervisor::pid_of(std::uint32_t machine) const {
  std::lock_guard<std::mutex> lock(mu_);
  return machine < children_.size() ? children_[machine].pid : -1;
}

void Supervisor::kill_hard(std::uint32_t machine) {
  int pid = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (machine < children_.size()) pid = children_[machine].pid;
  }
  if (pid > 0) ::kill(pid, SIGKILL);
}

void Supervisor::declare_dead(std::uint32_t machine,
                              const std::string& reason) {
  int pid = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (machine >= children_.size()) return;
    Child& child = children_[machine];
    if (child.state != State::kRunning) return;  // planned exit or already dead
    child.state = State::kDead;
    pid = child.pid;
  }
  deaths_.fetch_add(1);
  if (pid > 0) {
    // The process may still be half-alive (wedged); make the verdict final
    // before the hook runs the crash path, then reap without blocking long.
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, WNOHANG);
  }
  if (hook_) hook_(machine, reason);
}

void Supervisor::monitor_loop() {
  const auto timeout = std::chrono::microseconds(
      heartbeat_timeout_us_ > 0 ? heartbeat_timeout_us_ : 250'000);
  for (;;) {
    std::vector<std::uint32_t> dead_by_silence;
    std::vector<std::uint32_t> dead_by_exit;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, timeout / 4, [this] { return stopping_; });
      if (stopping_) return;
      const Clock::time_point now = Clock::now();
      for (std::uint32_t m = 0; m < children_.size(); ++m) {
        Child& child = children_[m];
        if (child.state != State::kRunning) continue;
        int status = 0;
        if (child.pid > 0 &&
            ::waitpid(child.pid, &status, WNOHANG) == child.pid) {
          dead_by_exit.push_back(m);
          continue;
        }
        if (now - child.last_seen > timeout) dead_by_silence.push_back(m);
      }
    }
    for (const std::uint32_t m : dead_by_exit) {
      declare_dead(m, "process-exited");
    }
    for (const std::uint32_t m : dead_by_silence) {
      declare_dead(m, "heartbeat-timeout");
    }
  }
}

}  // namespace paso::proc
