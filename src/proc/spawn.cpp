#include "proc/spawn.hpp"

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <vector>

namespace paso::proc {

std::string endpoint_arg_port(const EndpointConfig& c) {
  return "--port=" + std::to_string(c.port);
}
std::string endpoint_arg_machine(const EndpointConfig& c) {
  return "--machine=" + std::to_string(c.machine);
}
std::string endpoint_arg_token(const EndpointConfig& c) {
  return "--token=" + std::to_string(c.token);
}
std::string endpoint_arg_ingress(const EndpointConfig& c) {
  return "--ingress=" + std::to_string(c.ingress_capacity);
}
std::string endpoint_arg_heartbeat(const EndpointConfig& c) {
  return "--heartbeat-us=" + std::to_string(c.heartbeat_interval_us);
}

bool parse_endpoint_arg(const char* arg, EndpointConfig& config) {
  const auto value_of = [&](const char* prefix) -> const char* {
    const std::size_t len = std::strlen(prefix);
    return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
  };
  if (const char* v = value_of("--port=")) {
    config.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    return true;
  }
  if (const char* v = value_of("--machine=")) {
    config.machine = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    return true;
  }
  if (const char* v = value_of("--token=")) {
    config.token = std::strtoull(v, nullptr, 10);
    return true;
  }
  if (const char* v = value_of("--ingress=")) {
    config.ingress_capacity = std::strtoull(v, nullptr, 10);
    return true;
  }
  if (const char* v = value_of("--heartbeat-us=")) {
    config.heartbeat_interval_us = std::strtol(v, nullptr, 10);
    return true;
  }
  return false;
}

int spawn_machine_process(const SpawnSpec& spec) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid > 0) return static_cast<int>(pid);

  // Child. Never return into the caller's stack: run the endpoint (or exec
  // the dedicated binary) and _exit so no parent-side destructors run here.
  if (!spec.exec_path.empty()) {
    const std::string a_port = endpoint_arg_port(spec.endpoint);
    const std::string a_machine = endpoint_arg_machine(spec.endpoint);
    const std::string a_token = endpoint_arg_token(spec.endpoint);
    const std::string a_ingress = endpoint_arg_ingress(spec.endpoint);
    const std::string a_beat = endpoint_arg_heartbeat(spec.endpoint);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(spec.exec_path.c_str()));
    argv.push_back(const_cast<char*>(a_port.c_str()));
    argv.push_back(const_cast<char*>(a_machine.c_str()));
    argv.push_back(const_cast<char*>(a_token.c_str()));
    argv.push_back(const_cast<char*>(a_ingress.c_str()));
    argv.push_back(const_cast<char*>(a_beat.c_str()));
    argv.push_back(nullptr);
    ::execv(spec.exec_path.c_str(), argv.data());
    ::_exit(127);  // exec failed
  }
  ::_exit(machine_endpoint_main(spec.endpoint));
}

}  // namespace paso::proc
