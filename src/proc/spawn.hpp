// Machine-process launcher: fork (or fork+exec) one endpoint per machine.
//
// Two launch modes share one spec:
//
//   * fork-only (exec_path empty): the child continues from fork() straight
//     into proc::machine_endpoint_main and _exit()s with its return code.
//     This is the default for tests and in-binary clusters. It is only safe
//     while the forking process is effectively single-threaded — which is
//     why SocketTransport forks every child *before* starting any of its
//     own threads.
//   * fork+exec (exec_path set, normally the `paso_machined` tool): the
//     child execs a fresh image and parses the same spec from argv. The
//     fully-isolated mode for long-lived deployments.
//
// Either way the child is a real OS process with its own pid: it can be
// SIGKILLed, it shows up in `ps`, and its death is what the supervisor's
// heartbeat/EOF detection turns into the protocol's crash path.
#pragma once

#include <cstdint>
#include <string>

#include "proc/endpoint.hpp"

namespace paso::proc {

struct SpawnSpec {
  EndpointConfig endpoint;
  /// Path to a `paso_machined`-compatible binary; empty = fork-only mode.
  std::string exec_path;
};

/// Launch one machine process. Returns the child pid, or -1 on failure.
int spawn_machine_process(const SpawnSpec& spec);

/// argv for exec mode, matching what tools/paso_machined parses.
/// (Exposed so the tool and the launcher can never drift apart.)
std::string endpoint_arg_port(const EndpointConfig& c);
std::string endpoint_arg_machine(const EndpointConfig& c);
std::string endpoint_arg_token(const EndpointConfig& c);
std::string endpoint_arg_ingress(const EndpointConfig& c);
std::string endpoint_arg_heartbeat(const EndpointConfig& c);

/// Parse a `--key=value` endpoint argument into `config`; returns false on
/// an unknown or malformed argument. Used by tools/paso_machined.
bool parse_endpoint_arg(const char* arg, EndpointConfig& config);

}  // namespace paso::proc
