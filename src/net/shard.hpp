// Domain-scoped stack locking for the real-clock transports.
//
// The protocol stack is partitioned per machine (runtime, memory server,
// per-machine ledger rows), but operations span machines: a robust op
// touches its issuer plus the write group of every class it can reach, a
// delivery touches everything its sending chain touched plus the receiving
// machine, and control-plane work (view installs, crash handling, setup)
// touches everyone. Instead of one global stack mutex, each machine gets a
// *shard*, and every protocol execution runs under the set of shards of the
// machines it may touch — its **domain**, a 64-bit mask.
//
// Invariants (docs/threading.md has the full story):
//   * Shards are always acquired in ascending machine order — a fixed
//     global order, so any two executions' lock sets are deadlock-free.
//   * A domain is computed *before* execution starts and only ever widens
//     along a chain: domain(delivery) = domain(sender) | bit(to),
//     domain(timer) = domain(scheduler). Chains rooted at a client issue
//     start from {issuer} | support(classes); everything else is global.
//   * Two executions that touch the same shared record always share at
//     least one machine bit (a group's record is only touched by contexts
//     containing its write group), so holding the domain's shards is
//     mutual exclusion for everything the execution touches.
//   * Machines beyond 63 don't fit the mask: their bit is the full mask,
//     degrading those ops to global — correct, just unsharded.
//
// The ambient domain travels in a thread-local (`DomainScope`), keyed by
// the owning transport so independent transports in one process (tests
// build several clusters) never see each other's contexts. A thread with
// no context — a bench thread, a test assertion — is treated as global.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "common/require.hpp"

namespace paso::net {

using DomainMask = std::uint64_t;
inline constexpr DomainMask kGlobalDomain = ~DomainMask{0};

/// The shard bit for one machine; machines past the mask width collapse to
/// the global domain (every shard).
inline DomainMask domain_bit(std::size_t machine) {
  return machine < 64 ? (DomainMask{1} << machine) : kGlobalDomain;
}

struct DomainContext {
  const void* owner = nullptr;   ///< the transport this context belongs to
  DomainMask mask = kGlobalDomain;
};

inline DomainContext& tls_domain() {
  thread_local DomainContext context;
  return context;
}

/// RAII: install `mask` as the calling thread's ambient domain for `owner`.
class DomainScope {
 public:
  DomainScope(const void* owner, DomainMask mask) : saved_(tls_domain()) {
    tls_domain() = DomainContext{owner, mask};
  }
  ~DomainScope() { tls_domain() = saved_; }

  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  DomainContext saved_;
};

/// The sharded stack lock: one mutex per machine (capped at the 64-bit mask
/// width). `DomainLock` acquires a mask's shards in ascending order.
class ShardedStackLock {
 public:
  explicit ShardedStackLock(std::size_t machines)
      : count_(machines < 64 ? machines : 64),
        shards_(std::make_unique<std::mutex[]>(count_)) {
    PASO_REQUIRE(machines > 0, "sharded lock needs machines");
  }

  std::size_t shard_count() const { return count_; }
  std::mutex& shard(std::size_t i) { return shards_[i]; }

 private:
  std::size_t count_;
  std::unique_ptr<std::mutex[]> shards_;
};

/// Scoped acquisition of every shard in `mask`, ascending — the fixed
/// global order that keeps overlapping domains deadlock-free.
class DomainLock {
 public:
  DomainLock(ShardedStackLock& lock, DomainMask mask)
      : lock_(lock), mask_(mask) {
    for (std::size_t i = 0; i < lock_.shard_count(); ++i) {
      if (mask_ & (DomainMask{1} << i)) lock_.shard(i).lock();
    }
  }
  ~DomainLock() {
    for (std::size_t i = lock_.shard_count(); i-- > 0;) {
      if (mask_ & (DomainMask{1} << i)) lock_.shard(i).unlock();
    }
  }

  DomainLock(const DomainLock&) = delete;
  DomainLock& operator=(const DomainLock&) = delete;

 private:
  ShardedStackLock& lock_;
  DomainMask mask_;
};

}  // namespace paso::net
