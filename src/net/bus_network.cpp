#include "net/bus_network.hpp"

#include <algorithm>
#include <utility>

namespace paso::net {

void BusNetwork::send(MachineId from, MachineId to, const std::string& tag,
                      std::size_t bytes, Delivery deliver) {
  PASO_REQUIRE(from.value < up_.size() && to.value < up_.size(),
               "unknown machine");
  PASO_REQUIRE(deliver != nullptr, "null delivery");
  if (!up_[from.value]) return;  // a crashed machine sends nothing

  if (from == to) {
    // Local hand-off: no bus transmission, no cost, immediate (next event).
    simulator_.schedule_after(0, std::move(deliver));
    return;
  }

  const Cost cost = model_.message(bytes);
  ledger_.charge_message(tag, bytes, cost);
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("net.messages").inc();
    obs_.metrics->counter("net.bytes").inc(bytes);
    obs_.metrics->gauge("net.cost.alpha").add(model_.alpha);
    obs_.metrics->gauge("net.cost.beta").add(cost - model_.alpha);
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->record_message(tag, bytes, model_.alpha, cost - model_.alpha,
                                simulator_.now());
  }

  // The bus carries one message at a time: transmission begins when the bus
  // frees up, and delivery happens at transmission end.
  const sim::SimTime start = std::max(simulator_.now(), bus_free_at_);
  const sim::SimTime end = start + cost;
  bus_free_at_ = end;

  // Receiver-side delay window: the bus frees at `end` regardless, only the
  // delivery at `to` is pushed out (e.g. a machine with a clogged inbound
  // queue).
  sim::SimTime deliver_at = end;
  const Disturbance& d = chaos_[to.value];
  if (start < d.delay_until) {
    deliver_at += d.extra_delay;
    ++chaos_delayed_;
  }

  simulator_.schedule_at(deliver_at, [this, to, deliver = std::move(deliver)] {
    if (!up_[to.value]) return;
    if (simulator_.now() < chaos_[to.value].drop_until) {
      ++chaos_dropped_;
      return;
    }
    deliver();
  });
}

}  // namespace paso::net
