#include "net/bus_network.hpp"

#include <algorithm>
#include <utility>

namespace paso::net {

void BusNetwork::send(MachineId from, MachineId to, const std::string& tag,
                      std::size_t bytes, Delivery deliver) {
  PASO_REQUIRE(from.value < up_.size() && to.value < up_.size(),
               "unknown machine");
  PASO_REQUIRE(deliver != nullptr, "null delivery");
  if (!up_[from.value]) return;  // a crashed machine sends nothing

  if (from == to) {
    // Local hand-off: no bus transmission, no cost, immediate (next event).
    simulator_.schedule_after(0, std::move(deliver));
    return;
  }

  const Cost cost = model_.message(bytes);
  ledger_.charge_message(tag, bytes, cost);

  // The bus carries one message at a time: transmission begins when the bus
  // frees up, and delivery happens at transmission end.
  const sim::SimTime start = std::max(simulator_.now(), bus_free_at_);
  const sim::SimTime end = start + cost;
  bus_free_at_ = end;

  simulator_.schedule_at(end, [this, to, deliver = std::move(deliver)] {
    if (up_[to.value]) deliver();
  });
}

}  // namespace paso::net
