#include "net/bus_network.hpp"

#include <algorithm>
#include <utility>

namespace paso::net {

void BusNetwork::send(MachineId from, MachineId to, const std::string& tag,
                      std::size_t bytes, Delivery deliver) {
  PASO_REQUIRE(from.value < up_.size() && to.value < up_.size(),
               "unknown machine");
  PASO_REQUIRE(deliver != nullptr, "null delivery");
  if (!up_[from.value]) return;  // a crashed machine sends nothing

  if (from == to) {
    // Local hand-off: no bus transmission, no cost, immediate (next event).
    simulator_.schedule_after(0, std::move(deliver));
    return;
  }

  const std::uint32_t sf = topology_.segment_of(from);
  const std::uint32_t st = topology_.segment_of(to);
  const CostModel& src = topology_.segment_model(sf);

  Cost cost = 0;         // total charged msg-cost
  Cost alpha_part = 0;   // fixed-overhead share (for the alpha/beta split)
  sim::SimTime start = 0;  // transmission begin on the source bus
  sim::SimTime end = 0;    // arrival at the destination machine
  std::size_t hops = 0;
  bool shed = false;       // dropped at a full bounded bridge ingress

  if (sf == st) {
    // One serializing bus: transmission begins when it frees up, delivery
    // happens at transmission end — the classic single-bus model.
    cost = src.message(bytes);
    alpha_part = src.alpha;
    start = std::max(simulator_.now(), segment_free_[sf]);
    end = start + cost;
    segment_free_[sf] = end;
    SegmentStats& stats = segment_stats_[sf];
    ++stats.messages;
    stats.bytes += bytes;
    stats.busy += cost;
  } else {
    // Crossing: occupy the source bus, pay the per-hop bridge latency, then
    // occupy the destination bus (store-and-forward; only the shared buses
    // serialize). Both reservations are made now, deterministically, in
    // send order. With Topology::bridge_capacity set, the destination
    // ingress is a *bounded* buffer: a crossing that would find it full is
    // shed or back-pressured per the topology's BridgePolicy.
    const CostModel& dst = topology_.segment_model(st);
    hops = sf < st ? st - sf : sf - st;
    const Cost src_cost = src.message(bytes);
    const Cost dst_cost = dst.message(bytes);
    const Cost bridge = static_cast<Cost>(hops) * topology_.bridge_cost(bytes);
    start = std::max(simulator_.now(), segment_free_[sf]);

    std::deque<sim::SimTime>& queue = ingress_[st];
    // Reservations whose destination transmission began by `now` can never
    // count against any future arrival (arrivals are never in the past).
    while (!queue.empty() && queue.front() <= simulator_.now()) {
      queue.pop_front();
    }
    sim::SimTime arrive = start + src_cost + bridge;
    if (topology_.bounded_bridges()) {
      const std::size_t capacity = topology_.bridge_capacity();
      // Occupancy this crossing finds on arrival: reserved crossings whose
      // destination transmission has not begun by then (deque is ascending).
      auto occupancy = [&queue](sim::SimTime at) {
        return static_cast<std::size_t>(
            queue.end() -
            std::upper_bound(queue.begin(), queue.end(), at));
      };
      if (occupancy(arrive) >= capacity) {
        if (topology_.bridge_policy() == BridgePolicy::kBackpressure) {
          // Stall the source transmission until the ingress has room: the
          // buffer drains to capacity-1 once the (|q|-capacity)-th queued
          // departure has begun.
          const sim::SimTime room = queue[queue.size() - capacity];
          start = std::max(start, room - bridge - src_cost);
          arrive = start + src_cost + bridge;
          ++bridge_backpressured_;
        } else {
          shed = true;
        }
      }
    }

    const sim::SimTime src_end = start + src_cost;
    segment_free_[sf] = src_end;
    SegmentStats& sstats = segment_stats_[sf];
    ++sstats.messages;
    sstats.bytes += bytes;
    sstats.busy += src_cost;
    ++crossings_;

    if (shed) {
      // The source bus transmitted and the bridge hops were traversed, but
      // the message died at the full ingress: charge what actually moved,
      // never touch the destination bus.
      cost = src_cost + bridge;
      alpha_part =
          src.alpha + static_cast<Cost>(hops) * topology_.bridge_alpha();
      end = arrive;
      ++bridge_shed_;
    } else {
      cost = src_cost + bridge + dst_cost;
      alpha_part = src.alpha + dst.alpha +
                   static_cast<Cost>(hops) * topology_.bridge_alpha();
      const sim::SimTime dst_start = std::max(arrive, segment_free_[st]);
      end = dst_start + dst_cost;
      segment_free_[st] = end;
      SegmentStats& dstats = segment_stats_[st];
      ++dstats.messages;
      dstats.bytes += bytes;
      dstats.busy += dst_cost;
      queue.push_back(dst_start);
      const std::size_t depth = static_cast<std::size_t>(
          queue.end() -
          std::upper_bound(queue.begin(), queue.end(), arrive));
      if (depth > ingress_peak_[st]) ingress_peak_[st] = depth;
    }
  }

  ledger_.charge_message(tag, bytes, cost);
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("net.messages").inc();
    obs_.metrics->counter("net.bytes").inc(bytes);
    obs_.metrics->gauge("net.cost.alpha").add(alpha_part);
    obs_.metrics->gauge("net.cost.beta").add(cost - alpha_part);
    if (segment_count() > 1) {
      obs_.metrics->counter("net.segment." + std::to_string(sf) + ".messages")
          .inc();
      if (hops > 0) obs_.metrics->counter("net.crossings").inc();
      if (shed) obs_.metrics->counter("net.bridge.shed").inc();
    }
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->record_message(tag, bytes, alpha_part, cost - alpha_part,
                                simulator_.now(), sf, st,
                                static_cast<std::uint32_t>(hops));
  }

  // A shed crossing never reaches the destination bus: nothing to deliver.
  if (shed) return;

  // Bridge partitions: decided at transmission begin, like the delay
  // windows, so the decision is independent of event-queue tie-breaking.
  bool partitioned = false;
  for (std::uint32_t b = std::min(sf, st); b < std::max(sf, st); ++b) {
    if (start < bridge_partition_until_[b]) partitioned = true;
  }

  // Receiver-side delay window: the bus frees at `end` regardless, only the
  // delivery at `to` is pushed out (e.g. a machine with a clogged inbound
  // queue).
  sim::SimTime deliver_at = end;
  const Disturbance& d = chaos_[to.value];
  if (start < d.delay_until) {
    deliver_at += d.extra_delay;
    ++chaos_delayed_;
  }

  simulator_.schedule_at(
      deliver_at, [this, to, partitioned, deliver = std::move(deliver)] {
        if (partitioned) {
          ++partition_dropped_;
          return;
        }
        if (!up_[to.value]) return;
        if (simulator_.now() < chaos_[to.value].drop_until) {
          ++chaos_dropped_;
          return;
        }
        deliver();
      });
}

}  // namespace paso::net
