#include "net/topology.hpp"

#include <utility>

namespace paso::net {

Topology::Topology(std::vector<Segment> segments,
                   std::vector<std::uint32_t> machine_segment,
                   Cost bridge_alpha, Cost bridge_beta)
    : segments_(std::move(segments)),
      machine_segment_(std::move(machine_segment)),
      bridge_alpha_(bridge_alpha),
      bridge_beta_(bridge_beta) {
  PASO_REQUIRE(!segments_.empty(), "topology needs at least one segment");
  PASO_REQUIRE(bridge_alpha_ >= 0 && bridge_beta_ >= 0,
               "negative bridge cost");
  for (const std::uint32_t s : machine_segment_) {
    PASO_REQUIRE(s < segments_.size(), "machine assigned to unknown segment");
  }
}

Topology Topology::even(std::size_t segment_count, std::size_t machines,
                        CostModel model, Cost bridge_alpha, Cost bridge_beta) {
  PASO_REQUIRE(segment_count >= 1, "topology needs at least one segment");
  PASO_REQUIRE(machines >= segment_count,
               "fewer machines than segments");
  std::vector<Segment> segments(segment_count, Segment{model});
  std::vector<std::uint32_t> assignment(machines);
  for (std::size_t m = 0; m < machines; ++m) {
    // Contiguous blocks: machine m lands on floor(m * segments / machines),
    // so ids stay clustered by segment (matches how basic support spreads).
    assignment[m] = static_cast<std::uint32_t>(m * segment_count / machines);
  }
  return Topology(std::move(segments), std::move(assignment), bridge_alpha,
                  bridge_beta);
}

const CostModel& Topology::segment_model(std::uint32_t segment) const {
  PASO_REQUIRE(!degenerate(), "degenerate topology has no explicit model");
  PASO_REQUIRE(segment < segments_.size(), "unknown segment");
  return segments_[segment].model;
}

Cost Topology::message_cost(MachineId from, MachineId to,
                            std::size_t bytes) const {
  if (from == to) return 0;
  PASO_REQUIRE(!degenerate(),
               "message_cost needs a resolved topology (see resolve())");
  const std::uint32_t sf = segment_of(from);
  const std::uint32_t st = segment_of(to);
  if (sf == st) return segments_[sf].model.message(bytes);
  const std::size_t h = sf < st ? st - sf : sf - st;
  return segments_[sf].model.message(bytes) +
         static_cast<Cost>(h) * bridge_cost(bytes) +
         segments_[st].model.message(bytes);
}

Topology Topology::resolve(std::size_t machines,
                           const CostModel& default_model) const {
  if (degenerate()) {
    Topology resolved({Segment{default_model}},
                      std::vector<std::uint32_t>(machines, 0), 0, 0);
    resolved.bridge_capacity_ = bridge_capacity_;
    resolved.bridge_policy_ = bridge_policy_;
    return resolved;
  }
  PASO_REQUIRE(machine_segment_.size() == machines,
               "topology machine map does not match the machine count");
  return *this;
}

}  // namespace paso::net
