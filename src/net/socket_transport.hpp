// Socket Transport: machines are real OS processes on a real TCP wire.
//
// The third net::Transport implementation, and the phase-2 half of the
// real-clock runtime: where ThreadedTransport gave each machine a worker
// thread inside one address space, SocketTransport gives each machine its
// own *process* (proc::spawn_machine_process), connected to this — the
// broker — process over a length-prefixed framed codec (net/frame.hpp) on
// TCP localhost. A transmission physically leaves the broker as a kMsg
// frame whose payload is the declared wire size, enters the destination
// machine's process, sits in that process's *bounded* ingress buffer, and
// comes back as a kDeliver ack; only then does the delivery closure run.
// Every message therefore round-trips the real wire through the real
// destination process before the protocol observes it.
//
// Bus semantics and cost accounting:
//   * The broker is the bus arbiter: every send happens under the protocol
//     stack lock, so frames enter the wire one at a time, in a single
//     global order, exactly like transmissions on the paper's serializing
//     bus — the "token" is the broker itself.
//   * Model costs are charged at transmission begin with the identical
//     alpha/beta/bridge formula the simulated bus and the threaded
//     transport use, so a socket run's CostLedger reconciles exactly
//     against a simulated replay of the same trace (tools/trace_diff
//     --transport=all asserts this three ways).
//   * Bounded bridges (Topology::with_bridge_limit): the destination
//     process's ingress is this transport's bridge buffer. The broker
//     mirrors its occupancy as a per-destination-segment in-flight credit
//     (frames sent, ack not yet back); a crossing that finds the credit
//     exhausted is shed at transmission begin — charged source + bridge
//     hops only, like the threaded overflow lane (backpressure degrades to
//     shed for the same reason: the sender holds the stack lock). Within
//     the unbounded default, real backpressure still exists: a full child
//     ingress stops reading and TCP flow control stalls the broker's
//     writes, never the protocol.
//
// Failure plane: each machine process beacons heartbeats; a proc::Supervisor
// turns heartbeat silence, process exit (waitpid), or wire EOF into a
// single peer-death verdict, and the installed peer-death hook maps it onto
// the existing crash/view-change path (Cluster does this wiring). kill -9
// of a machine process is detected within the heartbeat timeout — usually
// faster, via EOF — and surfaces as a protocol crash, not a wedge.
//
// Threads in the broker: one IO thread (poll over all endpoint sockets +
// the listener + a wake pipe; it sleeps until woken or the earliest
// pending-handshake deadline — no fixed poll tick), one dispatcher thread
// executing delivered closures, and the ThreadedExecutor's timer thread.
// All protocol execution — issues, deliveries, timer callbacks — runs
// under the machine-sharded stack lock (net/shard.hpp), identical to the
// threaded transport's contract: each execution holds the shards of its
// domain, acquired in ascending order; 1 cost unit = 1 microsecond.
// Output IO is batched: frames queued toward an endpoint accumulate in
// pooled slabs and leave in a single writev (frames_sent/write_syscalls
// counters expose the coalescing ratio).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/threaded_executor.hpp"
#include "net/frame.hpp"
#include "net/shard.hpp"
#include "net/transport.hpp"
#include "proc/supervisor.hpp"

namespace paso::net {

struct SocketTransportOptions {
  /// Bound on each machine process's ingress buffer (frames read but not
  /// yet acked); a full ingress stops the child's reads (TCP backpressure).
  std::size_t ingress_capacity = 1024;
  /// Child heartbeat beacon interval, microseconds.
  long heartbeat_interval_us = 25'000;
  /// Supervisor verdict: silence longer than this is peer death.
  long heartbeat_timeout_us = 250'000;
  /// Deadline for all machine processes to connect and complete the
  /// Hello/HelloAck handshake at construction (and per respawn).
  long handshake_timeout_us = 10'000'000;
  /// Nonempty: fork+exec this `paso_machined` binary per machine instead of
  /// fork-only (see proc/spawn.hpp for the trade-off).
  std::string machined_path;
};

class SocketTransport final : public Transport {
 public:
  SocketTransport(CostModel model, std::size_t n, Topology topology = {},
                  SocketTransportOptions options = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // --- Transport -------------------------------------------------------------
  void send(MachineId from, MachineId to, const std::string& tag,
            std::size_t bytes, Delivery deliver) override;
  void set_up(MachineId machine, bool up) override;
  bool is_up(MachineId machine) const override;
  std::size_t machine_count() const override { return up_.size(); }
  const CostModel& cost_model() const override { return model_; }
  const Topology& topology() const override { return topology_; }
  CostLedger& ledger() override { return ledger_; }
  const CostLedger& ledger() const override { return ledger_; }
  exec::Executor& executor() override { return *executor_; }
  const exec::Executor& executor() const override { return *executor_; }
  void set_obs(obs::Obs o) override;
  obs::Obs observability() const override;
  void run_exclusive(const std::function<void()>& fn) override;
  void run_scoped(std::uint64_t domain,
                  const std::function<void()>& fn) override;
  bool context_is_global() const override;
  void defer_exclusive(std::function<void()> fn) override;
  void with_global_context(const std::function<void()>& fn) override;
  void shutdown() override;

  // --- process plane ----------------------------------------------------------
  /// Fired (off every internal lock) when a machine process dies — by
  /// kill -9, crash, heartbeat silence, or a malformed stream. The cluster
  /// maps this onto the protocol crash path. Install before traffic.
  using PeerDeathHook =
      std::function<void(MachineId machine, const std::string& reason)>;
  void set_peer_death_hook(PeerDeathHook hook);

  proc::Supervisor& supervisor() { return *supervisor_; }
  /// The machine process's pid (kill targets for the fault harness).
  int child_pid(MachineId m) const;
  /// True while the machine's endpoint process is connected and beating.
  bool endpoint_alive(MachineId m) const;
  /// Spawn a replacement process for a dead endpoint and re-handshake.
  /// Returns false if the handshake deadline passes. The machine's
  /// protocol-level recovery (Cluster::recover) is the caller's next step.
  bool respawn(MachineId m);

  // --- fabric observers -------------------------------------------------------
  std::uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t crossings() const {
    return crossings_.load(std::memory_order_relaxed);
  }
  /// Crossings shed at an exhausted bounded-bridge credit.
  std::uint64_t bridge_shed() const {
    return bridge_shed_.load(std::memory_order_relaxed);
  }
  /// Frames round-tripped through a machine process and acked back.
  std::uint64_t acks_received() const {
    return acks_.load(std::memory_order_relaxed);
  }
  /// Frames queued toward machine processes (kMsg and control frames).
  std::uint64_t frames_sent() const {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  /// writev() calls the IO thread made flushing endpoint output. The batch
  /// ratio frames_sent() / write_syscalls() is the syscall-coalescing win:
  /// every frame queued while the wire was busy rides a later vectored
  /// write for free.
  std::uint64_t write_syscalls() const {
    return write_syscalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t heartbeats_seen() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  /// Connections refused at the listener (bad handshake, bad token,
  /// malformed stream before Hello).
  std::uint64_t rejected_connections() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  std::uint16_t port() const { return port_; }
  const exec::ThreadedExecutor& threaded_executor() const {
    return *executor_;
  }

  /// Deliveries sent but not yet executed (wire + child ingress + dispatch
  /// queue + in dispatcher).
  std::uint64_t inflight_deliveries() const {
    return inflight_.load(std::memory_order_acquire);
  }

  /// Block until the fabric is quiet (no in-flight deliveries, dispatcher
  /// idle, timer queue empty — same contract as ThreadedTransport::quiesce)
  /// and `done` (under the stack lock; may be null) holds, stable across a
  /// few polls. False on timeout.
  bool quiesce(const std::function<bool()>& done = {},
               exec::Time timeout_us = 30'000'000);

 private:
  /// Broker-side state of one machine's endpoint connection.
  struct Endpoint {
    int fd = -1;
    std::atomic<bool> dead{false};
    FrameDecoder decoder;        ///< IO thread only
    /// Outgoing wire bytes as a queue of pooled slabs; out_off is the
    /// already-sent prefix of the front slab. The IO thread flushes the
    /// whole queue with one writev per poll wakeup. io_mu_.
    std::deque<std::string> outq;
    std::size_t out_off = 0;     ///< io_mu_
    /// FIFO of frames on the wire / in the child's ingress: seq, whether
    /// the transmission was a bridge crossing, the delivery to run on ack,
    /// and the stack-shard domain that delivery must hold. io_mu_.
    struct Pending {
      std::uint64_t seq;
      bool crossing;
      std::uint32_t dst_segment;
      Delivery deliver;
      DomainMask domain = kGlobalDomain;
    };
    std::deque<Pending> pending;
    std::uint64_t next_seq = 1;  ///< io_mu_
    /// Expected Hello token; respawn rotates it so a stale incarnation's
    /// half-dead socket cannot impersonate the replacement.
    std::atomic<std::uint64_t> token{0};
    bool bye_seen = false;       ///< io_mu_
  };

  /// A just-accepted connection whose Hello hasn't arrived yet.
  struct PendingConn {
    int fd = -1;
    FrameDecoder decoder;
    std::chrono::steady_clock::time_point deadline;
  };

  void io_loop();
  void dispatch_loop();
  void wake_io();
  void handle_frames(std::uint32_t machine);
  /// Funnel for every death signal; idempotent per incarnation.
  void handle_peer_death(std::uint32_t machine, const std::string& reason);
  /// Accept + Hello/HelloAck for one expected machine set; used by the
  /// constructor (all machines) and respawn (one machine). Caller must not
  /// hold io_mu_. Returns false on deadline.
  bool await_handshakes(std::size_t expected, long timeout_us);
  /// Validate a Hello on `fd`; attach as machine endpoint or reject.
  /// Returns the attached machine or SIZE_MAX.
  std::size_t attach_connection(int fd, const Frame& hello);
  /// Frame a transmission toward `to` and queue its delivery on the ack
  /// FIFO with the stack-shard `domain` its execution must hold.
  void enqueue_msg(MachineId to, bool crossing, std::uint32_t dst_segment,
                   std::size_t bytes, Delivery deliver, DomainMask domain);
  /// Append a frame header plus `payload_bytes` of zero filler to the
  /// endpoint's slab queue. Caller holds io_mu_.
  void append_wire(Endpoint& ep, FrameType type, std::uint32_t machine,
                   std::uint64_t seq, std::size_t payload_bytes);
  /// Recycle a drained slab (io_mu_ held).
  void put_slab(std::string&& slab);
  /// Flush the endpoint's slab queue with vectored writes until the wire
  /// blocks or the queue drains. Caller holds io_mu_.
  void flush_endpoint(Endpoint& ep);
  /// The calling thread's ambient domain on THIS transport (global for
  /// foreign threads); observability forces global — see threaded peer.
  DomainMask context_mask() const {
    if (obs_.metrics != nullptr || obs_.tracer != nullptr) {
      return kGlobalDomain;
    }
    const DomainContext& c = tls_domain();
    return c.owner == this ? c.mask : kGlobalDomain;
  }

  CostModel model_;
  Topology topology_;
  CostLedger ledger_;
  obs::Obs obs_;
  SocketTransportOptions options_;

  /// THE stack lock, sharded per machine: every protocol step (issue,
  /// delivery, timer) holds the shards of its domain, ascending.
  ShardedStackLock shards_;

  std::unique_ptr<exec::ThreadedExecutor> executor_;
  std::unique_ptr<proc::Supervisor> supervisor_;
  PeerDeathHook death_hook_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};

  std::vector<std::atomic<bool>> up_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  /// io_mu_ guards every endpoint's outq/out_off/pending/bye/next_seq, the
  /// pending-conn list, the slab pool, and fd lifecycle transitions.
  mutable std::mutex io_mu_;
  std::vector<PendingConn> pending_conns_;
  /// Recycled output slabs (io_mu_): steady state allocates nothing per
  /// message — headers and filler are appended into pooled buffers.
  std::vector<std::string> slab_pool_;

  /// Dispatcher: closures acked back from machine processes, executed
  /// under their domain's stack shards in ack order.
  struct Dispatch {
    std::uint32_t machine;
    Delivery deliver;
    DomainMask domain = kGlobalDomain;
  };
  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::deque<Dispatch> dispatch_queue_;
  std::atomic<bool> dispatcher_busy_{false};

  /// Bounded-bridge credit: crossings in flight toward each segment.
  std::vector<std::atomic<std::size_t>> crossing_inflight_;

  std::thread io_thread_;
  std::thread dispatch_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> io_stop_{false};
  bool shut_down_ = false;

  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> crossings_{0};
  std::atomic<std::uint64_t> bridge_shed_{0};
  std::atomic<std::uint64_t> acks_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> write_syscalls_{0};
};

}  // namespace paso::net
