#include "net/frame.hpp"

#include <cstring>

namespace paso::net {

namespace {

/// Consumed-prefix size past which feed() considers memmove compaction.
constexpr std::size_t kCompactThreshold = 4096;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

}  // namespace

bool frame_type_valid(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kBye);
}

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloAck:
      return "hello-ack";
    case FrameType::kMsg:
      return "msg";
    case FrameType::kDeliver:
      return "deliver";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kBye:
      return "bye";
  }
  return "?";
}

const char* frame_error_name(FrameErrorKind kind) {
  switch (kind) {
    case FrameErrorKind::kNone:
      return "none";
    case FrameErrorKind::kOversizedLength:
      return "oversized-length-prefix";
    case FrameErrorKind::kShortLength:
      return "short-length-prefix";
    case FrameErrorKind::kBadType:
      return "bad-frame-type";
    case FrameErrorKind::kTruncated:
      return "truncated-frame";
  }
  return "?";
}

void encode_frame_header(FrameType type, std::uint32_t machine,
                         std::uint64_t seq, std::size_t payload_bytes,
                         std::string& out) {
  const std::size_t length = kFrameHeaderBytes + payload_bytes;
  put_u32(out, static_cast<std::uint32_t>(length));
  out.push_back(static_cast<char>(type));
  put_u32(out, machine);
  put_u64(out, seq);
}

void encode_frame(const Frame& frame, std::string& out) {
  encode_frame_header(frame.type, frame.machine, frame.seq,
                      frame.payload.size(), out);
  out.append(frame.payload);
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (error_ != FrameErrorKind::kNone) return;  // poisoned: drop input
  // Compact the consumed prefix before growing, so a long-lived connection
  // never accumulates dead bytes. The threshold + majority rule makes the
  // cost linear: a compaction moves fewer live bytes than the consumed
  // bytes it reclaims, so each byte through the decoder is moved at most
  // once — no quadratic erase-from-front, however the stream is split.
  if (offset_ > 0 && offset_ == buffer_.size()) {
    buffer_.clear();  // keeps capacity: the common between-frames reset
    offset_ = 0;
  } else if (offset_ >= kCompactThreshold && offset_ * 2 >= buffer_.size()) {
    const std::size_t live = buffer_.size() - offset_;
    std::memmove(buffer_.data(), buffer_.data() + offset_, live);
    buffer_.resize(live);
    offset_ = 0;
    ++compactions_;
    bytes_moved_ += live;
  }
  buffer_.append(data, n);
}

DecodeResult FrameDecoder::fail(FrameErrorKind kind) {
  error_ = kind;
  DecodeResult result;
  result.error = kind;
  return result;
}

DecodeResult FrameDecoder::next() {
  DecodeResult result;
  if (error_ != FrameErrorKind::kNone) {
    result.error = error_;
    return result;
  }
  const std::size_t avail = buffer_.size() - offset_;
  if (avail < 4) return result;  // need the length prefix
  const char* base = buffer_.data() + offset_;
  const std::size_t length = get_u32(base);
  // Validate the prefix before waiting for the body: a corrupt length must
  // be rejected now, not after a 4 GiB read "completes" it.
  if (length > kMaxFrameLength) return fail(FrameErrorKind::kOversizedLength);
  if (length < kFrameHeaderBytes) return fail(FrameErrorKind::kShortLength);
  if (avail < 4 + length) return result;  // torn frame: need more bytes
  const std::uint8_t raw_type = static_cast<std::uint8_t>(base[4]);
  if (!frame_type_valid(raw_type)) return fail(FrameErrorKind::kBadType);
  result.has_frame = true;
  result.frame.type = static_cast<FrameType>(raw_type);
  result.frame.machine = get_u32(base + 5);
  result.frame.seq = get_u64(base + 9);
  if (!skip_payload_) {
    result.frame.payload.assign(base + 4 + kFrameHeaderBytes,
                                length - kFrameHeaderBytes);
  }
  offset_ += 4 + length;
  return result;
}

DecodeResult FrameDecoder::finish() {
  DecodeResult result;
  if (error_ != FrameErrorKind::kNone) {
    result.error = error_;
    return result;
  }
  if (pending_bytes() > 0) return fail(FrameErrorKind::kTruncated);
  return result;
}

}  // namespace paso::net
