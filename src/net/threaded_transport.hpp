// Real-clock threaded Transport: the "as fast as the hardware allows" bus.
//
// One worker thread per machine consumes bounded lock-free SPSC delivery
// rings — one ring per (segment, machine) pair — and a per-segment transmit
// token (spinlock) serializes senders on each segment, preserving the bus's
// one-message-at-a-time semantics without simulating transmission delay:
// the clock is std::chrono::steady_clock (via exec::ThreadedExecutor), and
// a message is delivered as soon as its ring hop and the destination worker
// allow.
//
// Model-cost accounting is unchanged: every transmission is charged
// alpha + beta*|m| (plus bridge hops) to the CostLedger exactly like the
// simulated bus, so a threaded run's model costs reconcile against a
// simulated replay of the same op trace (tools/trace_diff asserts this).
//
// Concurrency contract (the full memory-order story is docs/threading.md):
//   * ALL protocol execution — client issues, deliveries, timer callbacks —
//     runs under the machine-sharded stack lock (net/shard.hpp): every
//     execution holds the shards of its *domain*, the set of machines it
//     may touch, acquired in ascending order. Executions with overlapping
//     domains are mutually excluded (so shared records stay race-free: any
//     two executions touching a group's record both hold its write group's
//     shards); executions over disjoint machines run concurrently.
//     `run_exclusive` takes every shard — the global domain.
//   * A delivery runs under domain(sender) | bit(destination), captured at
//     send time; timer actions run under the domain of the context that
//     scheduled them. A delivery therefore observes everything the send
//     that caused it observed.
//   * The transport fabric itself is concurrent: ring push/pop are
//     lock-free, the transmit token is a spinlock held only for the push,
//     and workers drain rings outside the stack shards.
//   * A send never blocks: when a ring is full it spills to a small
//     mutex-guarded overflow queue drained by the same worker (FIFO order
//     per (segment, machine) is preserved because the worker empties the
//     overflow first while it is nonempty).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/threaded_executor.hpp"
#include "net/shard.hpp"
#include "net/spsc_ring.hpp"
#include "net/transport.hpp"

namespace paso::net {

struct ThreadedTransportOptions {
  /// Slots per (segment, machine) delivery ring (rounded up to a power of
  /// two; one slot is the full/empty sentinel).
  std::size_t ring_capacity = 1024;
};

class ThreadedTransport final : public Transport {
 public:
  ThreadedTransport(CostModel model, std::size_t n, Topology topology = {},
                    ThreadedTransportOptions options = {});
  ~ThreadedTransport() override;

  ThreadedTransport(const ThreadedTransport&) = delete;
  ThreadedTransport& operator=(const ThreadedTransport&) = delete;

  // --- Transport -------------------------------------------------------------
  void send(MachineId from, MachineId to, const std::string& tag,
            std::size_t bytes, Delivery deliver) override;
  void set_up(MachineId machine, bool up) override;
  bool is_up(MachineId machine) const override;
  std::size_t machine_count() const override { return up_.size(); }
  const CostModel& cost_model() const override { return model_; }
  const Topology& topology() const override { return topology_; }
  CostLedger& ledger() override { return ledger_; }
  const CostLedger& ledger() const override { return ledger_; }
  exec::Executor& executor() override { return *executor_; }
  const exec::Executor& executor() const override { return *executor_; }
  void set_obs(obs::Obs o) override;
  obs::Obs observability() const override;
  void run_exclusive(const std::function<void()>& fn) override;
  void run_scoped(std::uint64_t domain,
                  const std::function<void()>& fn) override;
  bool context_is_global() const override;
  void defer_exclusive(std::function<void()> fn) override;
  void with_global_context(const std::function<void()>& fn) override;
  void shutdown() override;

  // --- threaded-specific observers ------------------------------------------
  /// Messages pushed but not yet executed (rings + overflow + in workers).
  std::uint64_t inflight_deliveries() const {
    return inflight_.load(std::memory_order_acquire);
  }
  /// True when no worker is executing or holding popped deliveries.
  bool workers_idle() const;
  /// Transmissions / bytes / crossings so far (atomic counters, not the
  /// ledger: readable without the stack lock).
  std::uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t crossings() const {
    return crossings_.load(std::memory_order_relaxed);
  }
  /// Sends that found their ring full and took the overflow path.
  std::uint64_t overflowed() const {
    return overflowed_.load(std::memory_order_relaxed);
  }
  /// Crossings shed at a full bounded bridge ingress (the overflow lane is
  /// this transport's bridge buffer; see Topology::with_bridge_limit). Both
  /// policies shed here — blocking for backpressure would deadlock under
  /// the stack lock.
  std::uint64_t bridge_shed() const {
    return bridge_shed_.load(std::memory_order_relaxed);
  }
  const exec::ThreadedExecutor& threaded_executor() const {
    return *executor_;
  }

  /// Block until the fabric is quiet: no deliveries in flight, all workers
  /// idle, no timer action running or pending (the timer queue must drain
  /// completely — protocol chains hop through future-due timers, so "due
  /// later" still means "busy"), and `done` (checked under the stack lock;
  /// may be null) true — stable across a few polls. Returns false on
  /// timeout (e.g. an unsatisfiable polling blocking read).
  bool quiesce(const std::function<bool()>& done = {},
               exec::Time timeout_us = 30'000'000);

 private:
  /// One delivery plus the domain its execution must hold: the sender's
  /// ambient domain widened by the destination's shard.
  struct Sealed {
    Delivery fn;
    DomainMask domain = kGlobalDomain;
  };

  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<bool> parked{false};
    std::atomic<bool> busy{false};
    // Overflow lane for full rings, one deque per source segment to keep
    // the per-(segment, machine) FIFO contract.
    std::mutex overflow_mu;
    std::vector<std::deque<Sealed>> overflow;
  };

  SpscRing<Sealed>& ring(std::uint32_t segment, std::uint32_t machine) {
    return *rings_[segment * machine_count() + machine];
  }
  void worker_loop(std::uint32_t machine);
  /// Push onto the (segment, to) ring, spilling to the overflow lane when
  /// full. `cap` bounds the lane (kUnboundedBridge = never shed); returns
  /// false when the delivery was shed at a full lane.
  bool enqueue(std::uint32_t segment, MachineId to, Sealed sealed,
               std::size_t cap);
  void wake(Worker& worker);
  /// The calling thread's ambient domain on THIS transport (global for
  /// foreign threads). Observability forces global: the tracer's ambient
  /// op context is inherently single-threaded.
  DomainMask context_mask() const {
    if (obs_.metrics != nullptr || obs_.tracer != nullptr) {
      return kGlobalDomain;
    }
    const DomainContext& c = tls_domain();
    return c.owner == this ? c.mask : kGlobalDomain;
  }

  CostModel model_;
  Topology topology_;
  CostLedger ledger_;
  obs::Obs obs_;
  ThreadedTransportOptions options_;

  /// THE stack lock, sharded per machine: every protocol step (issue,
  /// delivery, timer) holds the shards of its domain, ascending.
  ShardedStackLock shards_;

  std::unique_ptr<exec::ThreadedExecutor> executor_;
  std::vector<std::atomic<bool>> up_;
  /// Per-segment transmit token: the single-producer guarantee for each
  /// (segment, machine) ring — whoever holds segment s's token is the one
  /// producer for every ring (s, *).
  std::vector<std::unique_ptr<std::atomic_flag>> tokens_;
  std::vector<std::unique_ptr<SpscRing<Sealed>>> rings_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::atomic<bool> stopping_{false};
  bool shut_down_ = false;
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> crossings_{0};
  std::atomic<std::uint64_t> overflowed_{0};
  std::atomic<std::uint64_t> bridge_shed_{0};
};

}  // namespace paso::net
