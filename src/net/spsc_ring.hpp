// Bounded lock-free single-producer/single-consumer ring.
//
// The delivery queue of the threaded transport: for each (segment, machine)
// pair one ring carries in-flight messages from the segment's transmit-token
// holder (the single producer — the token serializes the segment, exactly
// like the simulated bus serializes transmissions) to the destination
// machine's worker thread (the single consumer).
//
// Memory-order contract (documented in docs/threading.md):
//   * try_push writes the slot, then publishes with tail_.store(release);
//     try_pop observes tail_.load(acquire) before reading the slot — the
//     release/acquire pair makes the payload visible to the consumer.
//   * try_pop clears the slot, then frees it with head_.store(release);
//     try_push observes head_.load(acquire) — the slot's destruction
//     happens-before its reuse.
//   * Each side keeps a plain cached copy of the other side's index and
//     only re-reads the atomic when the cache says "full"/"empty", so the
//     steady-state hot path costs one relaxed load + one release store.
//
// Capacity is rounded up to a power of two; one slot is sacrificed to
// distinguish full from empty, so a ring of capacity N holds N-1 items.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/require.hpp"

namespace paso::net {

/// Both indices live on their own cache line so producer and consumer don't
/// false-share; 64 is the common x86/ARM line size (std::
/// hardware_destructive_interference_size is still patchy across stdlibs).
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    PASO_REQUIRE(capacity >= 2, "ring needs at least two slots");
    std::size_t size = 1;
    while (size < capacity) size <<= 1;
    slots_.resize(size);
    mask_ = size - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (the caller decides
  /// whether to spin, spill, or drop — the transport spills to a locked
  /// overflow queue so a send never blocks while holding protocol locks).
  bool try_push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (next == cached_head_) return false;  // genuinely full
    }
    slots_[tail] = std::move(item);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;  // genuinely empty
    }
    out = std::move(slots_[head]);
    slots_[head] = T{};  // release payload resources inside the slot now
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Racy observer (either side / monitors): may under- or over-count by
  /// in-flight pushes, never by more.
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }
  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }
  /// Usable capacity (one slot is the full/empty sentinel).
  std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer owned
  std::size_t cached_tail_ = 0;                           // consumer cache
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer owned
  std::size_t cached_head_ = 0;                           // producer cache
};

}  // namespace paso::net
