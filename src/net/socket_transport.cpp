#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <utility>

#include "common/require.hpp"
#include "proc/spawn.hpp"

namespace paso::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kInvalidMachine = static_cast<std::size_t>(-1);

std::uint64_t fresh_token() {
  // Tokens only need to make a stray/stale connection implausible, not be
  // cryptographic: a respawned machine must not be impersonated by the old
  // incarnation's half-dead socket.
  static std::mt19937_64 gen{std::random_device{}() ^
                             static_cast<std::uint64_t>(::getpid())};
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::uint64_t t = gen();
  return t == 0 ? 1 : t;
}

void set_nonblocking_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int make_listener(std::uint16_t& port_out, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral: the kernel picks, children get told
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  port_out = ntohs(addr.sin_port);
  set_nonblocking_nodelay(fd);
  return fd;
}

}  // namespace

SocketTransport::SocketTransport(CostModel model, std::size_t n,
                                 Topology topology,
                                 SocketTransportOptions options)
    : model_(model),
      topology_(topology.resolve(n, model)),
      options_(options),
      shards_(n),
      up_(n),
      crossing_inflight_(topology_.segment_count()) {
  PASO_REQUIRE(n > 0, "socket transport needs at least one machine");
  ledger_.ensure_machines(n);
  for (auto& up : up_) up.store(true, std::memory_order_relaxed);
  for (auto& c : crossing_inflight_) c.store(0, std::memory_order_relaxed);

  listen_fd_ = make_listener(port_, static_cast<int>(n) + 8);
  PASO_REQUIRE(listen_fd_ >= 0, "socket transport: cannot listen");
  PASO_REQUIRE(::pipe(wake_pipe_) == 0, "socket transport: cannot make pipe");
  set_nonblocking_nodelay(wake_pipe_[0]);
  set_nonblocking_nodelay(wake_pipe_[1]);

  for (std::size_t m = 0; m < n; ++m) {
    endpoints_.push_back(std::make_unique<Endpoint>());
    endpoints_.back()->token.store(fresh_token(), std::memory_order_relaxed);
    endpoints_.back()->dead.store(true, std::memory_order_relaxed);
  }

  supervisor_ = std::make_unique<proc::Supervisor>(
      n, options_.heartbeat_timeout_us);
  supervisor_->set_death_hook(
      [this](std::uint32_t machine, const std::string& reason) {
        handle_peer_death(machine, reason);
      });

  // Fork every machine process BEFORE this process grows any threads:
  // fork-only children (no exec) continue from fork() into the endpoint
  // loop, which is only sound from an effectively single-threaded parent.
  for (std::uint32_t m = 0; m < n; ++m) {
    proc::SpawnSpec spec;
    spec.endpoint.port = port_;
    spec.endpoint.machine = m;
    spec.endpoint.token = endpoints_[m]->token.load(std::memory_order_relaxed);
    spec.endpoint.ingress_capacity = options_.ingress_capacity;
    spec.endpoint.heartbeat_interval_us = options_.heartbeat_interval_us;
    spec.exec_path = options_.machined_path;
    const int pid = proc::spawn_machine_process(spec);
    PASO_REQUIRE(pid > 0, "socket transport: spawn failed");
    supervisor_->adopt(m, pid);
  }

  PASO_REQUIRE(await_handshakes(n, options_.handshake_timeout_us),
               "socket transport: machine processes failed to hand-shake");

  // Only now (children forked, endpoints attached) does the broker grow
  // threads: the timer loop, the supervisor monitor, IO and dispatch.
  // Timer callbacks run under the stack shards of the domain captured when
  // they were scheduled, so timer chains inherit their root's domain.
  executor_ = std::make_unique<exec::ThreadedExecutor>(
      [this](exec::Executor::Action&& action, std::uint64_t ctx) {
        DomainLock lock(shards_, ctx);
        DomainScope scope(this, ctx);
        if (!stopping_.load(std::memory_order_relaxed)) action();
      },
      [this] { return context_mask(); });
  supervisor_->start();
  io_thread_ = std::thread([this] { io_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

SocketTransport::~SocketTransport() { shutdown(); }

void SocketTransport::set_peer_death_hook(PeerDeathHook hook) {
  death_hook_ = std::move(hook);
}

void SocketTransport::set_up(MachineId machine, bool up) {
  PASO_REQUIRE(machine.value < up_.size(), "unknown machine");
  up_[machine.value].store(up, std::memory_order_release);
}

bool SocketTransport::is_up(MachineId machine) const {
  PASO_REQUIRE(machine.value < up_.size(), "unknown machine");
  return up_[machine.value].load(std::memory_order_acquire);
}

void SocketTransport::set_obs(obs::Obs o) { obs_ = o; }

obs::Obs SocketTransport::observability() const { return obs_; }

void SocketTransport::run_exclusive(const std::function<void()>& fn) {
  DomainLock lock(shards_, kGlobalDomain);
  DomainScope scope(this, kGlobalDomain);
  fn();
}

void SocketTransport::run_scoped(std::uint64_t domain,
                                 const std::function<void()>& fn) {
  DomainLock lock(shards_, domain);
  DomainScope scope(this, domain);
  fn();
}

bool SocketTransport::context_is_global() const {
  return context_mask() == kGlobalDomain;
}

void SocketTransport::defer_exclusive(std::function<void()> fn) {
  // Re-run `fn` outside the current (narrow) domain: schedule it with a
  // forced-global context so the timer runner takes every shard.
  DomainScope scope(this, kGlobalDomain);
  executor_->schedule_after(0, std::move(fn));
}

void SocketTransport::with_global_context(const std::function<void()>& fn) {
  // No locks taken — only widens the advertised context so nested sends
  // capture the global domain (cross-domain notification hops).
  DomainScope scope(this, kGlobalDomain);
  fn();
}

int SocketTransport::child_pid(MachineId m) const {
  return supervisor_->pid_of(static_cast<std::uint32_t>(m.value));
}

bool SocketTransport::endpoint_alive(MachineId m) const {
  PASO_REQUIRE(m.value < endpoints_.size(), "unknown machine");
  return !endpoints_[m.value]->dead.load(std::memory_order_acquire);
}

void SocketTransport::send(MachineId from, MachineId to, const std::string& tag,
                           std::size_t bytes, Delivery deliver) {
  PASO_REQUIRE(from.value < up_.size() && to.value < up_.size(),
               "unknown machine");
  PASO_REQUIRE(deliver != nullptr, "null delivery");
  if (stopping_.load(std::memory_order_relaxed)) return;
  if (!is_up(from)) return;  // a crashed machine sends nothing

  // The delivery's domain: everything the sending execution may touch,
  // widened by the destination — same contract as the threaded transport.
  const DomainMask domain = context_mask() | domain_bit(to.value);

  if (from == to) {
    // Local hand-off: no wire, no cost — the socket analogue of the
    // simulator's schedule_after(0); runs under the domain's stack shards
    // on the timer thread.
    DomainScope scope(this, domain);
    executor_->schedule_after(0, std::move(deliver));
    return;
  }

  const std::uint32_t sf = topology_.segment_of(from);
  const std::uint32_t st = topology_.segment_of(to);
  const CostModel& src = topology_.segment_model(sf);

  // Model-cost accounting, identical to the simulated bus and the threaded
  // transport — that identity is what lets trace_diff reconcile a socket
  // run's CostLedger against a simulated replay exactly. The ledger
  // serializes internally; obs handles are only touched under the global
  // domain (context_mask forces global whenever obs is installed).
  Cost cost = 0;
  Cost alpha_part = 0;
  std::size_t hops = 0;
  bool shed = false;
  if (sf == st) {
    cost = src.message(bytes);
    alpha_part = src.alpha;
    enqueue_msg(to, /*crossing=*/false, st, bytes, std::move(deliver), domain);
  } else {
    const CostModel& dst = topology_.segment_model(st);
    hops = sf < st ? st - sf : sf - st;
    const Cost bridge = static_cast<Cost>(hops) * topology_.bridge_cost(bytes);
    crossings_.fetch_add(1, std::memory_order_relaxed);
    // Bounded bridge ingress: the broker mirrors the destination process's
    // ingress occupancy as an in-flight crossing credit per segment (frames
    // sent, ack not yet back). At the cap the crossing is shed at
    // transmission begin — backpressure degrades to shed on a real-clock
    // transport for the same reason as the threaded one: the sender holds
    // the stack lock that delivery needs, so waiting for room would
    // deadlock the fabric.
    if (topology_.bounded_bridges() &&
        crossing_inflight_[st].load(std::memory_order_acquire) >=
            topology_.bridge_capacity()) {
      shed = true;
    }
    if (shed) {
      // The crossing died at the full ingress: charge the source bus and
      // the bridge hops that actually carried it, never the destination.
      cost = src.message(bytes) + bridge;
      alpha_part =
          src.alpha + static_cast<Cost>(hops) * topology_.bridge_alpha();
      bridge_shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      cost = src.message(bytes) + bridge + dst.message(bytes);
      alpha_part = src.alpha + dst.alpha +
                   static_cast<Cost>(hops) * topology_.bridge_alpha();
      crossing_inflight_[st].fetch_add(1, std::memory_order_acq_rel);
      enqueue_msg(to, /*crossing=*/true, st, bytes, std::move(deliver), domain);
    }
  }
  ledger_.charge_message(tag, bytes, cost);
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("net.messages").inc();
    obs_.metrics->counter("net.bytes").inc(bytes);
    obs_.metrics->gauge("net.cost.alpha").add(alpha_part);
    obs_.metrics->gauge("net.cost.beta").add(cost - alpha_part);
    if (segment_count() > 1) {
      obs_.metrics->counter("net.segment." + std::to_string(sf) + ".messages")
          .inc();
      if (hops > 0) obs_.metrics->counter("net.crossings").inc();
      if (shed) obs_.metrics->counter("net.bridge.shed").inc();
    }
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->record_message(tag, bytes, alpha_part, cost - alpha_part,
                                executor_->now(), sf, st,
                                static_cast<std::uint32_t>(hops));
  }
}

void SocketTransport::enqueue_msg(MachineId to, bool crossing,
                                  std::uint32_t dst_segment, std::size_t bytes,
                                  Delivery deliver, DomainMask domain) {
  Endpoint& ep = *endpoints_[to.value];
  if (ep.dead.load(std::memory_order_acquire)) {
    // The destination's process is gone but the protocol crash hasn't
    // propagated yet (or the machine stayed down): the transmission is
    // charged, the delivery silently dropped — the crash-fault model's
    // "destination down => drop", surfaced at the wire instead of at
    // execution time. Undo the crossing credit: nothing is in flight.
    if (crossing) {
      crossing_inflight_[dst_segment].fetch_sub(1, std::memory_order_acq_rel);
    }
    return;  // `deliver` destroyed here, under the caller's stack shards
  }

  inflight_.fetch_add(1, std::memory_order_acq_rel);
  {
    // seq is assigned under io_mu_: the caller holds its domain's shards,
    // which need not include the destination's bit, so concurrent senders
    // toward the same endpoint serialize here, not on the stack lock.
    std::lock_guard<std::mutex> lock(io_mu_);
    const std::uint64_t seq = ep.next_seq++;
    ep.pending.push_back({seq, crossing, dst_segment, std::move(deliver),
                          domain});
    append_wire(ep, FrameType::kMsg, static_cast<std::uint32_t>(to.value), seq,
                bytes);
  }
  wake_io();
}

void SocketTransport::append_wire(Endpoint& ep, FrameType type,
                                  std::uint32_t machine, std::uint64_t seq,
                                  std::size_t payload_bytes) {
  // Slab size trades pool memory against iovec count: 64 KiB holds ~hundreds
  // of typical frames, so even a large burst flushes in one writev.
  constexpr std::size_t kSlabBytes = 64 * 1024;
  const std::size_t need = 4 + kFrameHeaderBytes + payload_bytes;
  if (ep.outq.empty() || ep.outq.back().size() + need > kSlabBytes) {
    if (!slab_pool_.empty()) {
      ep.outq.push_back(std::move(slab_pool_.back()));
      slab_pool_.pop_back();
    } else {
      ep.outq.emplace_back();
      ep.outq.back().reserve(kSlabBytes);
    }
  }
  std::string& slab = ep.outq.back();
  encode_frame_header(type, machine, seq, payload_bytes, slab);
  // kMsg payloads are all-zero filler of the declared wire size: append
  // zeros straight into the slab instead of materializing a payload string.
  slab.append(payload_bytes, '\0');
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

void SocketTransport::put_slab(std::string&& slab) {
  // Cap the pool so a one-off burst doesn't pin its high-water mark forever.
  constexpr std::size_t kMaxPooledSlabs = 64;
  if (slab_pool_.size() >= kMaxPooledSlabs) return;  // let it free
  slab.clear();  // keeps capacity
  slab_pool_.push_back(std::move(slab));
}

void SocketTransport::flush_endpoint(Endpoint& ep) {
  // Vectored flush: every slab queued for this endpoint leaves in a single
  // writev when the kernel buffer allows — all frames queued while the wire
  // was busy coalesce into one syscall (the frames_sent/write_syscalls
  // ratio measures exactly this).
  constexpr std::size_t kMaxIov = 64;
  while (!ep.outq.empty()) {
    iovec iov[kMaxIov];
    std::size_t n_iov = 0;
    std::size_t queued = 0;
    for (const std::string& slab : ep.outq) {
      if (n_iov == kMaxIov) break;
      const std::size_t off = n_iov == 0 ? ep.out_off : 0;
      iov[n_iov].iov_base = const_cast<char*>(slab.data() + off);
      iov[n_iov].iov_len = slab.size() - off;
      queued += iov[n_iov].iov_len;
      ++n_iov;
    }
    const ssize_t n = ::writev(ep.fd, iov, static_cast<int>(n_iov));
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN (kernel buffer full) or a dying socket — reads deliver the
      // verdict; POLLOUT re-arms while the queue is nonempty.
      return;
    }
    write_syscalls_.fetch_add(1, std::memory_order_relaxed);
    std::size_t written = static_cast<std::size_t>(n);
    while (written > 0 && !ep.outq.empty()) {
      const std::size_t front_left = ep.outq.front().size() - ep.out_off;
      if (written >= front_left) {
        written -= front_left;
        put_slab(std::move(ep.outq.front()));
        ep.outq.pop_front();
        ep.out_off = 0;
      } else {
        ep.out_off += written;
        written = 0;
      }
    }
    if (static_cast<std::size_t>(n) < queued) return;  // partial: wire full
  }
}

void SocketTransport::wake_io() {
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

std::size_t SocketTransport::attach_connection(int fd, const Frame& hello) {
  const std::size_t m = hello.machine;
  if (m >= endpoints_.size() ||
      hello.seq != endpoints_[m]->token.load(std::memory_order_acquire) ||
      !endpoints_[m]->dead.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
    return kInvalidMachine;
  }
  Endpoint& ep = *endpoints_[m];
  set_nonblocking_nodelay(fd);
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    ep.fd = fd;
    ep.decoder = FrameDecoder{};
    while (!ep.outq.empty()) {
      put_slab(std::move(ep.outq.front()));
      ep.outq.pop_front();
    }
    ep.out_off = 0;
    ep.bye_seen = false;
    append_wire(ep, FrameType::kHelloAck, static_cast<std::uint32_t>(m),
                /*seq=*/0, /*payload_bytes=*/0);
  }
  supervisor_->beat(static_cast<std::uint32_t>(m));
  ep.dead.store(false, std::memory_order_release);
  return m;
}

bool SocketTransport::await_handshakes(std::size_t expected, long timeout_us) {
  // Synchronous accept/Hello loop: used by the constructor (no IO thread
  // yet) to gather every machine process. Respawn handshakes ride the IO
  // thread's identical accept path instead.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(timeout_us);
  std::size_t attached = 0;
  std::vector<PendingConn> conns;
  while (attached < expected) {
    if (Clock::now() >= deadline) {
      for (PendingConn& c : conns) ::close(c.fd);
      return false;
    }
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const PendingConn& c : conns) fds.push_back({c.fd, POLLIN, 0});
    // Connections accepted below grow `conns` past what was polled; only
    // the first `polled` entries have a pollfd this round.
    const std::size_t polled = conns.size();
    // Sleep toward the handshake deadline, not a fixed tick: connection and
    // Hello arrivals wake the poll, the deadline bounds a silent child.
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    const int timeout_ms =
        left.count() < 1 ? 1 : static_cast<int>(std::min<long long>(
                                   left.count(), 1'000));
    ::poll(fds.data(), fds.size(), timeout_ms);
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        conns.push_back({fd, FrameDecoder{}, deadline});
      }
    }
    // fds[j + 1] polled conns[i]; erasing a conn shifts later ones down
    // while their pollfds stay put, so the two indices advance separately.
    std::size_t i = 0;
    for (std::size_t j = 0; j < polled; ++j) {
      if (!(fds[j + 1].revents & (POLLIN | POLLHUP | POLLERR))) {
        ++i;
        continue;
      }
      char buf[256];
      const ssize_t n = ::recv(conns[i].fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
          ++i;
          continue;
        }
        rejected_.fetch_add(1, std::memory_order_relaxed);
        ::close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<long>(i));
        continue;
      }
      conns[i].decoder.feed(buf, static_cast<std::size_t>(n));
      const DecodeResult r = conns[i].decoder.next();
      if (r.error != FrameErrorKind::kNone ||
          (r.has_frame && r.frame.type != FrameType::kHello)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        ::close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<long>(i));
        continue;
      }
      if (!r.has_frame) {
        ++i;
        continue;
      }
      if (attach_connection(conns[i].fd, r.frame) != kInvalidMachine) {
        ++attached;
      }
      conns.erase(conns.begin() + static_cast<long>(i));
    }
  }
  for (PendingConn& c : conns) ::close(c.fd);
  return true;
}

void SocketTransport::handle_peer_death(std::uint32_t machine,
                                        const std::string& reason) {
  Endpoint& ep = *endpoints_[machine];
  if (ep.dead.exchange(true, std::memory_order_acq_rel)) {
    return;  // already declared for this incarnation
  }
  // Strip the endpoint's transport state. Its fd is closed by the IO
  // thread (the only thread that may close fds it polls); in-flight
  // deliveries die with the process.
  std::deque<Endpoint::Pending> dropped;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    dropped.swap(ep.pending);
    while (!ep.outq.empty()) {
      put_slab(std::move(ep.outq.front()));
      ep.outq.pop_front();
    }
    ep.out_off = 0;
  }
  if (!dropped.empty()) {
    inflight_.fetch_sub(dropped.size(), std::memory_order_acq_rel);
    for (const Endpoint::Pending& p : dropped) {
      if (p.crossing) {
        crossing_inflight_[p.dst_segment].fetch_sub(
            1, std::memory_order_acq_rel);
      }
    }
    // Dropped deliveries own protocol objects; destroy them under every
    // stack shard like every other protocol-state mutation (their domains
    // are mixed, so take the global lockset once).
    DomainLock lock(shards_, kGlobalDomain);
    dropped.clear();
  }
  wake_io();
  if (!stopping_.load(std::memory_order_acquire) && death_hook_) {
    death_hook_(MachineId{machine}, reason);
  }
}

void SocketTransport::handle_frames(std::uint32_t machine) {
  Endpoint& ep = *endpoints_[machine];
  for (;;) {
    const DecodeResult r = ep.decoder.next();
    if (r.error != FrameErrorKind::kNone) {
      supervisor_->connection_lost(
          machine, std::string("protocol-error: ") + frame_error_name(r.error));
      return;
    }
    if (!r.has_frame) return;
    switch (r.frame.type) {
      case FrameType::kDeliver: {
        Delivery deliver;
        bool fifo_ok = false;
        bool crossing = false;
        std::uint32_t dst_segment = 0;
        DomainMask domain = kGlobalDomain;
        {
          std::lock_guard<std::mutex> lock(io_mu_);
          if (!ep.pending.empty() && ep.pending.front().seq == r.frame.seq) {
            fifo_ok = true;
            crossing = ep.pending.front().crossing;
            dst_segment = ep.pending.front().dst_segment;
            domain = ep.pending.front().domain;
            deliver = std::move(ep.pending.front().deliver);
            ep.pending.pop_front();
          }
        }
        if (!fifo_ok) {
          // An ack for a frame we never sent (or out of order): the
          // connection's FIFO invariant is broken, the stream can't be
          // trusted.
          supervisor_->connection_lost(machine, "protocol-error: bad ack seq");
          return;
        }
        acks_.fetch_add(1, std::memory_order_relaxed);
        if (crossing) {
          crossing_inflight_[dst_segment].fetch_sub(1,
                                                    std::memory_order_acq_rel);
        }
        supervisor_->beat(machine);
        {
          std::lock_guard<std::mutex> lock(dispatch_mu_);
          dispatch_queue_.push_back({machine, std::move(deliver), domain});
        }
        dispatch_cv_.notify_one();
        break;
      }
      case FrameType::kHeartbeat:
        heartbeats_.fetch_add(1, std::memory_order_relaxed);
        supervisor_->beat(machine);
        break;
      case FrameType::kBye: {
        std::lock_guard<std::mutex> lock(io_mu_);
        ep.bye_seen = true;
        break;
      }
      default:
        break;  // stray Hello etc.: harmless
    }
  }
}

void SocketTransport::io_loop() {
  std::vector<pollfd> fds;
  std::vector<long> owners;  // >=0: machine; -1: wake; -2: listener; -3-k: conn k
  while (!io_stop_.load(std::memory_order_acquire)) {
    // Sweep: close fds of endpoints declared dead (only this thread closes
    // polled fds), expire stale pending connections.
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (auto& ep_ptr : endpoints_) {
        Endpoint& ep = *ep_ptr;
        if (ep.dead.load(std::memory_order_acquire) && ep.fd >= 0) {
          ::close(ep.fd);
          ep.fd = -1;
        }
      }
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < pending_conns_.size();) {
        if (now >= pending_conns_[i].deadline) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          ::close(pending_conns_[i].fd);
          pending_conns_.erase(pending_conns_.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
    }

    fds.clear();
    owners.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    owners.push_back(-1);
    fds.push_back({listen_fd_, POLLIN, 0});
    owners.push_back(-2);
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (std::size_t m = 0; m < endpoints_.size(); ++m) {
        Endpoint& ep = *endpoints_[m];
        if (ep.fd < 0 || ep.dead.load(std::memory_order_acquire)) continue;
        short events = POLLIN;
        if (!ep.outq.empty()) events |= POLLOUT;
        fds.push_back({ep.fd, events, 0});
        owners.push_back(static_cast<long>(m));
      }
      for (std::size_t i = 0; i < pending_conns_.size(); ++i) {
        fds.push_back({pending_conns_[i].fd, POLLIN, 0});
        owners.push_back(-3 - static_cast<long>(i));
      }
    }

    // Sleep until a socket or the wake pipe stirs: enqueue_msg and shutdown
    // both write the wake pipe, so no fixed tick is needed. The only timed
    // wakeup this loop owes anyone is expiring a half-open handshake, so the
    // timeout is that deadline — or forever when none is pending.
    int timeout_ms = -1;
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      if (!pending_conns_.empty()) {
        Clock::time_point earliest = pending_conns_[0].deadline;
        for (const PendingConn& c : pending_conns_) {
          earliest = std::min(earliest, c.deadline);
        }
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            earliest - Clock::now());
        timeout_ms = left.count() < 1
                         ? 1
                         : static_cast<int>(
                               std::min<long long>(left.count(), 1'000));
      }
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const long owner = owners[i];

      if (owner == -1) {
        char buf[256];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }

      if (owner == -2) {
        // A connection here is either a respawned machine's Hello or
        // garbage (tests point nc at us); it gets one second to present a
        // valid Hello, then dies counted.
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking_nodelay(fd);
          std::lock_guard<std::mutex> lock(io_mu_);
          pending_conns_.push_back(
              {fd, FrameDecoder{}, Clock::now() + std::chrono::seconds(1)});
        }
        continue;
      }

      if (owner <= -3) {
        // Identify the pending connection by fd, not by index: an earlier
        // event in this same poll round may have erased a neighbor and
        // shifted the list.
        const int fd = fds[i].fd;
        char buf[256];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        bool drop = false;
        Frame hello;
        bool have_hello = false;
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          drop = true;
        } else if (n > 0) {
          std::lock_guard<std::mutex> lock(io_mu_);
          for (PendingConn& c : pending_conns_) {
            if (c.fd != fd) continue;
            c.decoder.feed(buf, static_cast<std::size_t>(n));
            const DecodeResult r = c.decoder.next();
            if (r.error != FrameErrorKind::kNone ||
                (r.has_frame && r.frame.type != FrameType::kHello)) {
              drop = true;
            } else if (r.has_frame) {
              hello = r.frame;
              have_hello = true;
            }
            break;
          }
        }
        if (drop || have_hello) {
          {
            std::lock_guard<std::mutex> lock(io_mu_);
            for (std::size_t ci = 0; ci < pending_conns_.size(); ++ci) {
              if (pending_conns_[ci].fd == fd) {
                pending_conns_.erase(pending_conns_.begin() +
                                     static_cast<long>(ci));
                break;
              }
            }
          }
          if (drop) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);
          } else {
            attach_connection(fd, hello);  // rejects (and counts) bad Hellos
          }
        }
        continue;
      }

      // A machine endpoint.
      const std::uint32_t m = static_cast<std::uint32_t>(owner);
      Endpoint& ep = *endpoints_[m];
      if (ep.dead.load(std::memory_order_acquire)) continue;

      if (fds[i].revents & POLLOUT) {
        std::lock_guard<std::mutex> lock(io_mu_);
        flush_endpoint(ep);
      }

      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        bool eof = false;
        char buf[65536];
        for (;;) {
          const ssize_t n = ::recv(ep.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            ep.decoder.feed(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          eof = true;  // 0 = peer closed; other errors: connection is gone
          break;
        }
        handle_frames(m);  // may declare the peer dead on a protocol error
        if (eof && !ep.dead.load(std::memory_order_acquire)) {
          // A planned EOF (shutdown drain) also runs the death funnel —
          // the supervisor's expect-exit marks make it a silent no-op.
          supervisor_->connection_lost(m, "connection-lost");
        }
      }
    }
  }
}

void SocketTransport::dispatch_loop() {
  std::deque<Dispatch> batch;
  for (;;) {
    {
      // Plain predicate wait — no timed tick. Shutdown notifies under
      // dispatch_mu_ after flipping stopping_, so the wakeup cannot be lost.
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [this] {
        return !dispatch_queue_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (dispatch_queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      dispatcher_busy_.store(true, std::memory_order_release);
      batch.swap(dispatch_queue_);
    }
    // Execute phase: each delivery runs under the stack shards of its own
    // domain, in ack order — narrow domains let deliveries toward disjoint
    // machine sets overlap with issues elsewhere. The machine's up check
    // happens at execution time, mirroring the simulated bus's
    // delivery-time crash drop.
    const std::size_t executed = batch.size();
    for (Dispatch& d : batch) {
      DomainLock lock(shards_, d.domain);
      DomainScope scope(this, d.domain);
      if (!stopping_.load(std::memory_order_relaxed) &&
          up_[d.machine].load(std::memory_order_acquire)) {
        d.deliver();
      }
      d.deliver = nullptr;  // destroy the closure under its domain's shards
    }
    batch.clear();
    // Deliveries leave "in flight" only after their effects are visible
    // under their shards; busy drops last so quiesce() cannot observe
    // inflight==0 with the dispatcher still mid-batch.
    inflight_.fetch_sub(executed, std::memory_order_acq_rel);
    dispatcher_busy_.store(false, std::memory_order_release);
  }
}

bool SocketTransport::respawn(MachineId machine) {
  PASO_REQUIRE(machine.value < endpoints_.size(), "unknown machine");
  const std::uint32_t m = static_cast<std::uint32_t>(machine.value);
  Endpoint& ep = *endpoints_[m];
  PASO_REQUIRE(ep.dead.load(std::memory_order_acquire),
               "respawn of a live endpoint");
  const std::uint64_t token = fresh_token();
  ep.token.store(token, std::memory_order_release);

  proc::SpawnSpec spec;
  spec.endpoint.port = port_;
  spec.endpoint.machine = m;
  spec.endpoint.token = token;
  spec.endpoint.ingress_capacity = options_.ingress_capacity;
  spec.endpoint.heartbeat_interval_us = options_.heartbeat_interval_us;
  spec.exec_path = options_.machined_path;
  const int pid = proc::spawn_machine_process(spec);
  if (pid <= 0) return false;
  supervisor_->adopt(m, pid);

  // The IO thread's accept path completes the handshake; wait it out.
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::microseconds(options_.handshake_timeout_us);
  while (ep.dead.load(std::memory_order_acquire)) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

bool SocketTransport::quiesce(const std::function<bool()>& done,
                              exec::Time timeout_us) {
  const exec::Time deadline = executor_->now() + timeout_us;
  int stable = 0;
  while (stable < 3) {
    // Quiet = nothing moving anywhere: no delivery on the wire or in a
    // child's ingress or awaiting dispatch, no dispatcher mid-batch, no
    // executor action running, and an *empty* timer queue — same contract
    // (and same `== kNever` subtlety) as ThreadedTransport::quiesce.
    bool quiet = inflight_deliveries() == 0 &&
                 !dispatcher_busy_.load(std::memory_order_acquire) &&
                 !executor_->running_action() &&
                 executor_->next_due() == exec::kNever;
    if (quiet && done) {
      run_exclusive([&] { quiet = done(); });
    }
    stable = quiet ? stable + 1 : 0;
    if (executor_->now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

void SocketTransport::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;

  // Stop the timer loop first (joins its thread: no more timer actions).
  stopping_.store(true, std::memory_order_release);
  if (executor_) executor_->stop();

  // Every machine process is now expected to exit: tell them to drain, and
  // let the supervisor treat the resulting EOFs/exits as planned.
  supervisor_->expect_all_exits();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    for (std::size_t m = 0; m < endpoints_.size(); ++m) {
      Endpoint& ep = *endpoints_[m];
      if (ep.fd < 0 || ep.dead.load(std::memory_order_acquire)) continue;
      append_wire(ep, FrameType::kShutdown, static_cast<std::uint32_t>(m),
                  /*seq=*/0, /*payload_bytes=*/0);
    }
  }
  wake_io();

  // Bounded drain: wait for each child's kBye (or its EOF) so exits are
  // clean in the common case; stragglers are reaped by supervisor_->stop().
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool all_done = true;
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (const auto& ep : endpoints_) {
        if (!ep->dead.load(std::memory_order_acquire) && !ep->bye_seen) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done || Clock::now() >= drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  io_stop_.store(true, std::memory_order_release);
  wake_io();
  {
    // Touch dispatch_mu_ before notifying: the dispatcher uses an untimed
    // predicate wait, so a notify racing between its predicate check and
    // its sleep would otherwise be lost forever.
    std::lock_guard<std::mutex> lock(dispatch_mu_);
  }
  dispatch_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  supervisor_->stop();  // reaps every child (SIGKILL escalation for wedges)

  // Pending deliveries are dropped without running — the protocol objects
  // they point into may be about to die. Destroy them under every stack
  // shard for symmetry with the execution path, in the send path's order
  // (shards, then io_mu_) so the lock-order graph stays acyclic even
  // though every other thread is already joined here.
  {
    DomainLock stack_lock(shards_, kGlobalDomain);
    std::lock_guard<std::mutex> io_lock(io_mu_);
    for (auto& ep : endpoints_) {
      ep->pending.clear();
      ep->outq.clear();
      ep->out_off = 0;
      if (ep->fd >= 0) {
        ::close(ep->fd);
        ep->fd = -1;
      }
    }
    std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
    dispatch_queue_.clear();
  }
  for (PendingConn& c : pending_conns_) ::close(c.fd);
  pending_conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace paso::net
