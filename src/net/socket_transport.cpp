#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <utility>

#include "common/require.hpp"
#include "proc/spawn.hpp"

namespace paso::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kInvalidMachine = static_cast<std::size_t>(-1);

std::uint64_t fresh_token() {
  // Tokens only need to make a stray/stale connection implausible, not be
  // cryptographic: a respawned machine must not be impersonated by the old
  // incarnation's half-dead socket.
  static std::mt19937_64 gen{std::random_device{}() ^
                             static_cast<std::uint64_t>(::getpid())};
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::uint64_t t = gen();
  return t == 0 ? 1 : t;
}

void set_nonblocking_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int make_listener(std::uint16_t& port_out, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral: the kernel picks, children get told
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  port_out = ntohs(addr.sin_port);
  set_nonblocking_nodelay(fd);
  return fd;
}

}  // namespace

SocketTransport::SocketTransport(CostModel model, std::size_t n,
                                 Topology topology,
                                 SocketTransportOptions options)
    : model_(model),
      topology_(topology.resolve(n, model)),
      options_(options),
      up_(n),
      crossing_inflight_(topology_.segment_count()) {
  PASO_REQUIRE(n > 0, "socket transport needs at least one machine");
  ledger_.ensure_machines(n);
  for (auto& up : up_) up.store(true, std::memory_order_relaxed);
  for (auto& c : crossing_inflight_) c.store(0, std::memory_order_relaxed);

  listen_fd_ = make_listener(port_, static_cast<int>(n) + 8);
  PASO_REQUIRE(listen_fd_ >= 0, "socket transport: cannot listen");
  PASO_REQUIRE(::pipe(wake_pipe_) == 0, "socket transport: cannot make pipe");
  set_nonblocking_nodelay(wake_pipe_[0]);
  set_nonblocking_nodelay(wake_pipe_[1]);

  for (std::size_t m = 0; m < n; ++m) {
    endpoints_.push_back(std::make_unique<Endpoint>());
    endpoints_.back()->token.store(fresh_token(), std::memory_order_relaxed);
    endpoints_.back()->dead.store(true, std::memory_order_relaxed);
  }

  supervisor_ = std::make_unique<proc::Supervisor>(
      n, options_.heartbeat_timeout_us);
  supervisor_->set_death_hook(
      [this](std::uint32_t machine, const std::string& reason) {
        handle_peer_death(machine, reason);
      });

  // Fork every machine process BEFORE this process grows any threads:
  // fork-only children (no exec) continue from fork() into the endpoint
  // loop, which is only sound from an effectively single-threaded parent.
  for (std::uint32_t m = 0; m < n; ++m) {
    proc::SpawnSpec spec;
    spec.endpoint.port = port_;
    spec.endpoint.machine = m;
    spec.endpoint.token = endpoints_[m]->token.load(std::memory_order_relaxed);
    spec.endpoint.ingress_capacity = options_.ingress_capacity;
    spec.endpoint.heartbeat_interval_us = options_.heartbeat_interval_us;
    spec.exec_path = options_.machined_path;
    const int pid = proc::spawn_machine_process(spec);
    PASO_REQUIRE(pid > 0, "socket transport: spawn failed");
    supervisor_->adopt(m, pid);
  }

  PASO_REQUIRE(await_handshakes(n, options_.handshake_timeout_us),
               "socket transport: machine processes failed to hand-shake");

  // Only now (children forked, endpoints attached) does the broker grow
  // threads: the timer loop, the supervisor monitor, IO and dispatch.
  executor_ = std::make_unique<exec::ThreadedExecutor>(
      [this](exec::Executor::Action&& action) {
        std::lock_guard<std::mutex> lock(stack_mu_);
        if (!stopping_.load(std::memory_order_relaxed)) action();
      });
  supervisor_->start();
  io_thread_ = std::thread([this] { io_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

SocketTransport::~SocketTransport() { shutdown(); }

void SocketTransport::set_peer_death_hook(PeerDeathHook hook) {
  death_hook_ = std::move(hook);
}

void SocketTransport::set_up(MachineId machine, bool up) {
  PASO_REQUIRE(machine.value < up_.size(), "unknown machine");
  up_[machine.value].store(up, std::memory_order_release);
}

bool SocketTransport::is_up(MachineId machine) const {
  PASO_REQUIRE(machine.value < up_.size(), "unknown machine");
  return up_[machine.value].load(std::memory_order_acquire);
}

void SocketTransport::set_obs(obs::Obs o) { obs_ = o; }

obs::Obs SocketTransport::observability() const { return obs_; }

void SocketTransport::run_exclusive(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> lock(stack_mu_);
  fn();
}

int SocketTransport::child_pid(MachineId m) const {
  return supervisor_->pid_of(static_cast<std::uint32_t>(m.value));
}

bool SocketTransport::endpoint_alive(MachineId m) const {
  PASO_REQUIRE(m.value < endpoints_.size(), "unknown machine");
  return !endpoints_[m.value]->dead.load(std::memory_order_acquire);
}

void SocketTransport::send(MachineId from, MachineId to, const std::string& tag,
                           std::size_t bytes, Delivery deliver) {
  PASO_REQUIRE(from.value < up_.size() && to.value < up_.size(),
               "unknown machine");
  PASO_REQUIRE(deliver != nullptr, "null delivery");
  if (stopping_.load(std::memory_order_relaxed)) return;
  if (!is_up(from)) return;  // a crashed machine sends nothing

  if (from == to) {
    // Local hand-off: no wire, no cost — the socket analogue of the
    // simulator's schedule_after(0); runs under the stack lock on the
    // timer thread.
    executor_->schedule_after(0, std::move(deliver));
    return;
  }

  const std::uint32_t sf = topology_.segment_of(from);
  const std::uint32_t st = topology_.segment_of(to);
  const CostModel& src = topology_.segment_model(sf);

  // Model-cost accounting, identical to the simulated bus and the threaded
  // transport — that identity is what lets trace_diff reconcile a socket
  // run's CostLedger against a simulated replay exactly. The caller holds
  // the stack lock (all sends originate from protocol code), so the ledger
  // and obs handles are safe to touch.
  Cost cost = 0;
  Cost alpha_part = 0;
  std::size_t hops = 0;
  bool shed = false;
  if (sf == st) {
    cost = src.message(bytes);
    alpha_part = src.alpha;
    enqueue_msg(to, /*crossing=*/false, st, bytes, std::move(deliver));
  } else {
    const CostModel& dst = topology_.segment_model(st);
    hops = sf < st ? st - sf : sf - st;
    const Cost bridge = static_cast<Cost>(hops) * topology_.bridge_cost(bytes);
    crossings_.fetch_add(1, std::memory_order_relaxed);
    // Bounded bridge ingress: the broker mirrors the destination process's
    // ingress occupancy as an in-flight crossing credit per segment (frames
    // sent, ack not yet back). At the cap the crossing is shed at
    // transmission begin — backpressure degrades to shed on a real-clock
    // transport for the same reason as the threaded one: the sender holds
    // the stack lock that delivery needs, so waiting for room would
    // deadlock the fabric.
    if (topology_.bounded_bridges() &&
        crossing_inflight_[st].load(std::memory_order_acquire) >=
            topology_.bridge_capacity()) {
      shed = true;
    }
    if (shed) {
      // The crossing died at the full ingress: charge the source bus and
      // the bridge hops that actually carried it, never the destination.
      cost = src.message(bytes) + bridge;
      alpha_part =
          src.alpha + static_cast<Cost>(hops) * topology_.bridge_alpha();
      bridge_shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      cost = src.message(bytes) + bridge + dst.message(bytes);
      alpha_part = src.alpha + dst.alpha +
                   static_cast<Cost>(hops) * topology_.bridge_alpha();
      crossing_inflight_[st].fetch_add(1, std::memory_order_acq_rel);
      enqueue_msg(to, /*crossing=*/true, st, bytes, std::move(deliver));
    }
  }
  ledger_.charge_message(tag, bytes, cost);
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("net.messages").inc();
    obs_.metrics->counter("net.bytes").inc(bytes);
    obs_.metrics->gauge("net.cost.alpha").add(alpha_part);
    obs_.metrics->gauge("net.cost.beta").add(cost - alpha_part);
    if (segment_count() > 1) {
      obs_.metrics->counter("net.segment." + std::to_string(sf) + ".messages")
          .inc();
      if (hops > 0) obs_.metrics->counter("net.crossings").inc();
      if (shed) obs_.metrics->counter("net.bridge.shed").inc();
    }
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->record_message(tag, bytes, alpha_part, cost - alpha_part,
                                executor_->now(), sf, st,
                                static_cast<std::uint32_t>(hops));
  }
}

void SocketTransport::enqueue_msg(MachineId to, bool crossing,
                                  std::uint32_t dst_segment, std::size_t bytes,
                                  Delivery deliver) {
  Endpoint& ep = *endpoints_[to.value];
  if (ep.dead.load(std::memory_order_acquire)) {
    // The destination's process is gone but the protocol crash hasn't
    // propagated yet (or the machine stayed down): the transmission is
    // charged, the delivery silently dropped — the crash-fault model's
    // "destination down => drop", surfaced at the wire instead of at
    // execution time. Undo the crossing credit: nothing is in flight.
    if (crossing) {
      crossing_inflight_[dst_segment].fetch_sub(1, std::memory_order_acq_rel);
    }
    return;  // `deliver` destroyed here, under the caller's stack lock
  }

  Frame frame;
  frame.type = FrameType::kMsg;
  frame.machine = static_cast<std::uint32_t>(to.value);
  frame.seq = ep.next_seq++;
  frame.payload.assign(bytes, '\0');  // the declared wire size, really sent

  inflight_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    ep.pending.push_back(
        {frame.seq, crossing, dst_segment, std::move(deliver)});
    encode_frame(frame, ep.outbuf);
  }
  wake_io();
}

void SocketTransport::wake_io() {
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

std::size_t SocketTransport::attach_connection(int fd, const Frame& hello) {
  const std::size_t m = hello.machine;
  if (m >= endpoints_.size() ||
      hello.seq != endpoints_[m]->token.load(std::memory_order_acquire) ||
      !endpoints_[m]->dead.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
    return kInvalidMachine;
  }
  Endpoint& ep = *endpoints_[m];
  set_nonblocking_nodelay(fd);
  Frame ack;
  ack.type = FrameType::kHelloAck;
  ack.machine = static_cast<std::uint32_t>(m);
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    ep.fd = fd;
    ep.decoder = FrameDecoder{};
    ep.outbuf.clear();
    ep.out_off = 0;
    ep.bye_seen = false;
    encode_frame(ack, ep.outbuf);
  }
  supervisor_->beat(static_cast<std::uint32_t>(m));
  ep.dead.store(false, std::memory_order_release);
  return m;
}

bool SocketTransport::await_handshakes(std::size_t expected, long timeout_us) {
  // Synchronous accept/Hello loop: used by the constructor (no IO thread
  // yet) to gather every machine process. Respawn handshakes ride the IO
  // thread's identical accept path instead.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(timeout_us);
  std::size_t attached = 0;
  std::vector<PendingConn> conns;
  while (attached < expected) {
    if (Clock::now() >= deadline) {
      for (PendingConn& c : conns) ::close(c.fd);
      return false;
    }
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const PendingConn& c : conns) fds.push_back({c.fd, POLLIN, 0});
    ::poll(fds.data(), fds.size(), 50);
    if (fds[0].revents & POLLIN) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        conns.push_back({fd, FrameDecoder{}, deadline});
      }
    }
    for (std::size_t i = 0; i < conns.size();) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) {
        ++i;
        continue;
      }
      char buf[256];
      const ssize_t n = ::recv(conns[i].fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) {
          ++i;
          continue;
        }
        rejected_.fetch_add(1, std::memory_order_relaxed);
        ::close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<long>(i));
        continue;
      }
      conns[i].decoder.feed(buf, static_cast<std::size_t>(n));
      const DecodeResult r = conns[i].decoder.next();
      if (r.error != FrameErrorKind::kNone ||
          (r.has_frame && r.frame.type != FrameType::kHello)) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        ::close(conns[i].fd);
        conns.erase(conns.begin() + static_cast<long>(i));
        continue;
      }
      if (!r.has_frame) {
        ++i;
        continue;
      }
      if (attach_connection(conns[i].fd, r.frame) != kInvalidMachine) {
        ++attached;
      }
      conns.erase(conns.begin() + static_cast<long>(i));
    }
  }
  for (PendingConn& c : conns) ::close(c.fd);
  return true;
}

void SocketTransport::handle_peer_death(std::uint32_t machine,
                                        const std::string& reason) {
  Endpoint& ep = *endpoints_[machine];
  if (ep.dead.exchange(true, std::memory_order_acq_rel)) {
    return;  // already declared for this incarnation
  }
  // Strip the endpoint's transport state. Its fd is closed by the IO
  // thread (the only thread that may close fds it polls); in-flight
  // deliveries die with the process.
  std::deque<Endpoint::Pending> dropped;
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    dropped.swap(ep.pending);
    ep.outbuf.clear();
    ep.out_off = 0;
  }
  if (!dropped.empty()) {
    inflight_.fetch_sub(dropped.size(), std::memory_order_acq_rel);
    for (const Endpoint::Pending& p : dropped) {
      if (p.crossing) {
        crossing_inflight_[p.dst_segment].fetch_sub(
            1, std::memory_order_acq_rel);
      }
    }
    // Dropped deliveries own protocol objects; destroy them under the
    // stack lock like every other protocol-state mutation.
    std::lock_guard<std::mutex> lock(stack_mu_);
    dropped.clear();
  }
  wake_io();
  if (!stopping_.load(std::memory_order_acquire) && death_hook_) {
    death_hook_(MachineId{machine}, reason);
  }
}

void SocketTransport::handle_frames(std::uint32_t machine) {
  Endpoint& ep = *endpoints_[machine];
  for (;;) {
    const DecodeResult r = ep.decoder.next();
    if (r.error != FrameErrorKind::kNone) {
      supervisor_->connection_lost(
          machine, std::string("protocol-error: ") + frame_error_name(r.error));
      return;
    }
    if (!r.has_frame) return;
    switch (r.frame.type) {
      case FrameType::kDeliver: {
        Delivery deliver;
        bool fifo_ok = false;
        bool crossing = false;
        std::uint32_t dst_segment = 0;
        {
          std::lock_guard<std::mutex> lock(io_mu_);
          if (!ep.pending.empty() && ep.pending.front().seq == r.frame.seq) {
            fifo_ok = true;
            crossing = ep.pending.front().crossing;
            dst_segment = ep.pending.front().dst_segment;
            deliver = std::move(ep.pending.front().deliver);
            ep.pending.pop_front();
          }
        }
        if (!fifo_ok) {
          // An ack for a frame we never sent (or out of order): the
          // connection's FIFO invariant is broken, the stream can't be
          // trusted.
          supervisor_->connection_lost(machine, "protocol-error: bad ack seq");
          return;
        }
        acks_.fetch_add(1, std::memory_order_relaxed);
        if (crossing) {
          crossing_inflight_[dst_segment].fetch_sub(1,
                                                    std::memory_order_acq_rel);
        }
        supervisor_->beat(machine);
        {
          std::lock_guard<std::mutex> lock(dispatch_mu_);
          dispatch_queue_.emplace_back(machine, std::move(deliver));
        }
        dispatch_cv_.notify_one();
        break;
      }
      case FrameType::kHeartbeat:
        heartbeats_.fetch_add(1, std::memory_order_relaxed);
        supervisor_->beat(machine);
        break;
      case FrameType::kBye: {
        std::lock_guard<std::mutex> lock(io_mu_);
        ep.bye_seen = true;
        break;
      }
      default:
        break;  // stray Hello etc.: harmless
    }
  }
}

void SocketTransport::io_loop() {
  std::vector<pollfd> fds;
  std::vector<long> owners;  // >=0: machine; -1: wake; -2: listener; -3-k: conn k
  while (!io_stop_.load(std::memory_order_acquire)) {
    // Sweep: close fds of endpoints declared dead (only this thread closes
    // polled fds), expire stale pending connections.
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (auto& ep_ptr : endpoints_) {
        Endpoint& ep = *ep_ptr;
        if (ep.dead.load(std::memory_order_acquire) && ep.fd >= 0) {
          ::close(ep.fd);
          ep.fd = -1;
        }
      }
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < pending_conns_.size();) {
        if (now >= pending_conns_[i].deadline) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          ::close(pending_conns_[i].fd);
          pending_conns_.erase(pending_conns_.begin() + static_cast<long>(i));
        } else {
          ++i;
        }
      }
    }

    fds.clear();
    owners.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    owners.push_back(-1);
    fds.push_back({listen_fd_, POLLIN, 0});
    owners.push_back(-2);
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (std::size_t m = 0; m < endpoints_.size(); ++m) {
        Endpoint& ep = *endpoints_[m];
        if (ep.fd < 0 || ep.dead.load(std::memory_order_acquire)) continue;
        short events = POLLIN;
        if (ep.out_off < ep.outbuf.size()) events |= POLLOUT;
        fds.push_back({ep.fd, events, 0});
        owners.push_back(static_cast<long>(m));
      }
      for (std::size_t i = 0; i < pending_conns_.size(); ++i) {
        fds.push_back({pending_conns_[i].fd, POLLIN, 0});
        owners.push_back(-3 - static_cast<long>(i));
      }
    }

    const int ready = ::poll(fds.data(), fds.size(), 20);
    if (ready < 0 && errno != EINTR) break;

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const long owner = owners[i];

      if (owner == -1) {
        char buf[256];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }

      if (owner == -2) {
        // A connection here is either a respawned machine's Hello or
        // garbage (tests point nc at us); it gets one second to present a
        // valid Hello, then dies counted.
        for (;;) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          set_nonblocking_nodelay(fd);
          std::lock_guard<std::mutex> lock(io_mu_);
          pending_conns_.push_back(
              {fd, FrameDecoder{}, Clock::now() + std::chrono::seconds(1)});
        }
        continue;
      }

      if (owner <= -3) {
        // Identify the pending connection by fd, not by index: an earlier
        // event in this same poll round may have erased a neighbor and
        // shifted the list.
        const int fd = fds[i].fd;
        char buf[256];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        bool drop = false;
        Frame hello;
        bool have_hello = false;
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          drop = true;
        } else if (n > 0) {
          std::lock_guard<std::mutex> lock(io_mu_);
          for (PendingConn& c : pending_conns_) {
            if (c.fd != fd) continue;
            c.decoder.feed(buf, static_cast<std::size_t>(n));
            const DecodeResult r = c.decoder.next();
            if (r.error != FrameErrorKind::kNone ||
                (r.has_frame && r.frame.type != FrameType::kHello)) {
              drop = true;
            } else if (r.has_frame) {
              hello = r.frame;
              have_hello = true;
            }
            break;
          }
        }
        if (drop || have_hello) {
          {
            std::lock_guard<std::mutex> lock(io_mu_);
            for (std::size_t ci = 0; ci < pending_conns_.size(); ++ci) {
              if (pending_conns_[ci].fd == fd) {
                pending_conns_.erase(pending_conns_.begin() +
                                     static_cast<long>(ci));
                break;
              }
            }
          }
          if (drop) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            ::close(fd);
          } else {
            attach_connection(fd, hello);  // rejects (and counts) bad Hellos
          }
        }
        continue;
      }

      // A machine endpoint.
      const std::uint32_t m = static_cast<std::uint32_t>(owner);
      Endpoint& ep = *endpoints_[m];
      if (ep.dead.load(std::memory_order_acquire)) continue;

      if (fds[i].revents & POLLOUT) {
        std::lock_guard<std::mutex> lock(io_mu_);
        while (ep.out_off < ep.outbuf.size()) {
          const ssize_t n =
              ::send(ep.fd, ep.outbuf.data() + ep.out_off,
                     ep.outbuf.size() - ep.out_off, MSG_NOSIGNAL);
          if (n > 0) {
            ep.out_off += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          break;  // EAGAIN (kernel buffer full) or a dying socket — reads
                  // will deliver the verdict
        }
        if (ep.out_off > 0 && ep.out_off == ep.outbuf.size()) {
          ep.outbuf.clear();
          ep.out_off = 0;
        }
      }

      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        bool eof = false;
        char buf[65536];
        for (;;) {
          const ssize_t n = ::recv(ep.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            ep.decoder.feed(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          eof = true;  // 0 = peer closed; other errors: connection is gone
          break;
        }
        handle_frames(m);  // may declare the peer dead on a protocol error
        if (eof && !ep.dead.load(std::memory_order_acquire)) {
          // A planned EOF (shutdown drain) also runs the death funnel —
          // the supervisor's expect-exit marks make it a silent no-op.
          supervisor_->connection_lost(m, "connection-lost");
        }
      }
    }
  }
}

void SocketTransport::dispatch_loop() {
  std::deque<std::pair<std::uint32_t, Delivery>> batch;
  std::size_t executed = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
        return !dispatch_queue_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (dispatch_queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      dispatcher_busy_.store(true, std::memory_order_release);
      batch.swap(dispatch_queue_);
    }
    {
      // Execute phase: protocol code runs under the stack lock, in ack
      // order. The machine's up check happens at execution time, mirroring
      // the simulated bus's delivery-time crash drop.
      std::lock_guard<std::mutex> lock(stack_mu_);
      for (auto& [machine, deliver] : batch) {
        if (!stopping_.load(std::memory_order_relaxed) &&
            up_[machine].load(std::memory_order_acquire)) {
          deliver();
        }
      }
      executed = batch.size();
      batch.clear();  // destroy closures under the stack lock
    }
    // Deliveries leave "in flight" only after their effects are visible
    // under the stack lock; busy drops last so quiesce() cannot observe
    // inflight==0 with the dispatcher still mid-batch.
    inflight_.fetch_sub(executed, std::memory_order_acq_rel);
    dispatcher_busy_.store(false, std::memory_order_release);
  }
}

bool SocketTransport::respawn(MachineId machine) {
  PASO_REQUIRE(machine.value < endpoints_.size(), "unknown machine");
  const std::uint32_t m = static_cast<std::uint32_t>(machine.value);
  Endpoint& ep = *endpoints_[m];
  PASO_REQUIRE(ep.dead.load(std::memory_order_acquire),
               "respawn of a live endpoint");
  const std::uint64_t token = fresh_token();
  ep.token.store(token, std::memory_order_release);

  proc::SpawnSpec spec;
  spec.endpoint.port = port_;
  spec.endpoint.machine = m;
  spec.endpoint.token = token;
  spec.endpoint.ingress_capacity = options_.ingress_capacity;
  spec.endpoint.heartbeat_interval_us = options_.heartbeat_interval_us;
  spec.exec_path = options_.machined_path;
  const int pid = proc::spawn_machine_process(spec);
  if (pid <= 0) return false;
  supervisor_->adopt(m, pid);

  // The IO thread's accept path completes the handshake; wait it out.
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::microseconds(options_.handshake_timeout_us);
  while (ep.dead.load(std::memory_order_acquire)) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

bool SocketTransport::quiesce(const std::function<bool()>& done,
                              exec::Time timeout_us) {
  const exec::Time deadline = executor_->now() + timeout_us;
  int stable = 0;
  while (stable < 3) {
    // Quiet = nothing moving anywhere: no delivery on the wire or in a
    // child's ingress or awaiting dispatch, no dispatcher mid-batch, no
    // executor action running, and an *empty* timer queue — same contract
    // (and same `== kNever` subtlety) as ThreadedTransport::quiesce.
    bool quiet = inflight_deliveries() == 0 &&
                 !dispatcher_busy_.load(std::memory_order_acquire) &&
                 !executor_->running_action() &&
                 executor_->next_due() == exec::kNever;
    if (quiet && done) {
      run_exclusive([&] { quiet = done(); });
    }
    stable = quiet ? stable + 1 : 0;
    if (executor_->now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

void SocketTransport::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;

  // Stop the timer loop first (joins its thread: no more timer actions).
  stopping_.store(true, std::memory_order_release);
  if (executor_) executor_->stop();

  // Every machine process is now expected to exit: tell them to drain, and
  // let the supervisor treat the resulting EOFs/exits as planned.
  supervisor_->expect_all_exits();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    for (std::size_t m = 0; m < endpoints_.size(); ++m) {
      Endpoint& ep = *endpoints_[m];
      if (ep.fd < 0 || ep.dead.load(std::memory_order_acquire)) continue;
      Frame bye;
      bye.type = FrameType::kShutdown;
      bye.machine = static_cast<std::uint32_t>(m);
      encode_frame(bye, ep.outbuf);
    }
  }
  wake_io();

  // Bounded drain: wait for each child's kBye (or its EOF) so exits are
  // clean in the common case; stragglers are reaped by supervisor_->stop().
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool all_done = true;
    {
      std::lock_guard<std::mutex> lock(io_mu_);
      for (const auto& ep : endpoints_) {
        if (!ep->dead.load(std::memory_order_acquire) && !ep->bye_seen) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done || Clock::now() >= drain_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  io_stop_.store(true, std::memory_order_release);
  wake_io();
  dispatch_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();

  supervisor_->stop();  // reaps every child (SIGKILL escalation for wedges)

  // Pending deliveries are dropped without running — the protocol objects
  // they point into may be about to die. Destroy them under the stack lock
  // for symmetry with the execution path.
  {
    std::lock_guard<std::mutex> io_lock(io_mu_);
    std::lock_guard<std::mutex> stack_lock(stack_mu_);
    for (auto& ep : endpoints_) {
      ep->pending.clear();
      ep->outbuf.clear();
      if (ep->fd >= 0) {
        ::close(ep->fd);
        ep->fd = -1;
      }
    }
    std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
    dispatch_queue_.clear();
  }
  for (PendingConn& c : pending_conns_) ::close(c.fd);
  pending_conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace paso::net
