// Segmented LAN topology (multi-segment bus).
//
// The paper's network model (Section 3.3) is one serializing Ethernet; a
// Topology generalizes it to a *chain* of bus segments, each with its own
// alpha/beta and its own serialization queue, joined by store-and-forward
// bridges. A message between machines on segments s and t occupies the
// source bus for its source-segment msg-cost, crosses |s - t| bridges at
// bridge_alpha + bridge_beta*|m| each, then occupies the destination bus for
// its destination-segment msg-cost. Bridges never serialize (only the shared
// buses do), so the model stays a deterministic lower bound on completion
// time exactly like the single bus.
//
// Bridge buffers are *bounded* when `bridge_capacity` is set: a crossing
// that would find more than `bridge_capacity` crossings already queued at
// the destination bus's ingress is handled per `bridge_policy` — shed
// (dropped after its source-bus transmission, like a partition drop) or
// back-pressured (the source bus stalls, head-of-line, until the ingress
// drains below the cap). The default capacity is unbounded, which is
// bit-for-bit the legacy store-and-forward behavior.
//
// The default-constructed Topology is *degenerate*: no segments declared,
// meaning "one bus, use the network's own cost model". BusNetwork's
// degenerate path is bit-for-bit the classic single-bus behavior, which is
// what lets every pre-topology BENCH_baseline.json row reproduce exactly.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/cost.hpp"
#include "common/ids.hpp"
#include "common/require.hpp"

namespace paso::net {

/// One bus segment: an independent serializing Ethernet.
struct Segment {
  CostModel model{};
};

/// What a bridge does with a crossing that arrives at a full destination
/// ingress buffer (see Topology::bridge_capacity).
enum class BridgePolicy {
  /// Drop the message at the bridge. The source bus already transmitted it
  /// (and is charged), the destination bus never carries it.
  kShed,
  /// Stall the source bus (head-of-line) until the destination ingress has
  /// room, so the crossing is delayed, never lost. Models a bridge that
  /// asserts carrier-sense back onto the sending segment.
  kBackpressure,
};

/// Sentinel: unbounded bridge buffers (the legacy model).
inline constexpr std::size_t kUnboundedBridge = SIZE_MAX;

class Topology {
 public:
  /// Degenerate single-bus topology (the classic model).
  Topology() = default;

  /// Explicit topology: `machine_segment[m]` places machine m on a segment.
  /// Segments form a chain in index order; crossing from segment s to t
  /// costs |s - t| bridge hops.
  Topology(std::vector<Segment> segments,
           std::vector<std::uint32_t> machine_segment, Cost bridge_alpha,
           Cost bridge_beta);

  /// Split `machines` machines into `segment_count` contiguous blocks of
  /// (near-)equal size, every segment sharing `model`.
  static Topology even(std::size_t segment_count, std::size_t machines,
                       CostModel model, Cost bridge_alpha, Cost bridge_beta);

  bool degenerate() const { return segments_.empty(); }
  std::size_t segment_count() const {
    return degenerate() ? 1 : segments_.size();
  }
  std::size_t bridge_count() const { return segment_count() - 1; }

  std::uint32_t segment_of(MachineId m) const {
    return m.value < machine_segment_.size() ? machine_segment_[m.value] : 0;
  }
  const CostModel& segment_model(std::uint32_t segment) const;
  Cost bridge_alpha() const { return bridge_alpha_; }
  Cost bridge_beta() const { return bridge_beta_; }

  /// Bound the per-segment bridge ingress buffer: at most `capacity`
  /// crossings may be queued awaiting a destination bus at any moment;
  /// overflow is handled per `policy`. kUnboundedBridge (the default)
  /// reproduces the legacy unbounded store-and-forward behavior bit for
  /// bit. Returns *this so a topology literal can be built fluently.
  Topology& with_bridge_limit(std::size_t capacity,
                              BridgePolicy policy = BridgePolicy::kShed) {
    PASO_REQUIRE(capacity > 0, "bridge capacity must be positive");
    bridge_capacity_ = capacity;
    bridge_policy_ = policy;
    return *this;
  }
  std::size_t bridge_capacity() const { return bridge_capacity_; }
  BridgePolicy bridge_policy() const { return bridge_policy_; }
  bool bounded_bridges() const {
    return bridge_capacity_ != kUnboundedBridge;
  }

  /// Bridge hops between two machines' segments (0 = same segment).
  std::size_t hops(MachineId a, MachineId b) const {
    const std::uint32_t sa = segment_of(a);
    const std::uint32_t sb = segment_of(b);
    return sa < sb ? sb - sa : sa - sb;
  }

  /// Per-hop crossing cost for a message of `bytes`.
  Cost bridge_cost(std::size_t bytes) const {
    return bridge_alpha_ + bridge_beta_ * static_cast<Cost>(bytes);
  }

  /// Model msg-cost of a transmission under this topology: the quantity
  /// BusNetwork charges. Self-sends are free; intra-segment sends cost the
  /// segment's alpha + beta*|m|; crossings add both end-segments' costs
  /// plus one bridge cost per hop. Used by placement and support selection
  /// to score candidates without a live network.
  Cost message_cost(MachineId from, MachineId to, std::size_t bytes) const;

  /// Concrete copy of this topology for a network of `machines` machines:
  /// the degenerate form becomes an explicit one-segment topology running
  /// `default_model`; explicit forms are validated against the machine
  /// count and returned as-is.
  Topology resolve(std::size_t machines, const CostModel& default_model) const;

  const std::vector<Segment>& segments() const { return segments_; }
  const std::vector<std::uint32_t>& machine_segments() const {
    return machine_segment_;
  }

 private:
  std::vector<Segment> segments_;
  std::vector<std::uint32_t> machine_segment_;
  Cost bridge_alpha_ = 0;
  Cost bridge_beta_ = 0;
  std::size_t bridge_capacity_ = kUnboundedBridge;
  BridgePolicy bridge_policy_ = BridgePolicy::kShed;
};

}  // namespace paso::net
