// Simulated bus-based LAN (Section 3.3), generalized to a segment Topology.
//
// The paper's network model is a standard-Unix-workstation Ethernet: no
// hardware multicast, messages transmitted one at a time on a shared bus,
// per-message cost msg-cost(m) = alpha + beta*|m|. We model exactly that:
// each send occupies its bus for its msg-cost in virtual time units, so the
// total message cost of a run is, by construction, a lower bound on the time
// to complete it — the property Section 5 relies on. With a multi-segment
// Topology each segment is its own serializing bus; a crossing occupies the
// source bus, pays per-hop bridge latency, then occupies the destination
// bus (see topology.hpp). The degenerate topology reproduces the single-bus
// behavior bit-for-bit.
//
// BusNetwork is the virtual-time implementation of net::Transport; the
// real-clock counterpart is net::ThreadedTransport. Payloads are delivery
// closures (the whole system lives in one address space), but every send
// declares its wire size explicitly; all cost accounting uses the declared
// size, never sizeof.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/cost.hpp"
#include "common/ids.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace paso::net {

/// A serializing broadcast bus (or chain of bridged bus segments)
/// connecting `n` machines.
class BusNetwork final : public Transport {
 public:
  using Delivery = Transport::Delivery;

  /// Per-segment traffic totals (utilization = busy / elapsed time).
  struct SegmentStats {
    std::uint64_t messages = 0;  ///< transmissions that occupied this bus
    std::uint64_t bytes = 0;
    Cost busy = 0;  ///< total virtual time this bus spent transmitting
  };

  BusNetwork(sim::Simulator& simulator, CostModel model, std::size_t n,
             Topology topology = {})
      : simulator_(simulator),
        model_(model),
        topology_(topology.resolve(n, model)),
        up_(n, true),
        chaos_(n),
        segment_free_(topology_.segment_count(), 0),
        segment_stats_(topology_.segment_count()),
        bridge_partition_until_(topology_.bridge_count(), 0),
        ingress_(topology_.segment_count()),
        ingress_peak_(topology_.segment_count(), 0) {
    ledger_.ensure_machines(n);
  }

  /// Point-to-point send. The message occupies its bus(es) for its
  /// msg-cost; `deliver` runs at the destination when transmission
  /// completes, unless the destination is down at that moment (crash =>
  /// silent drop, matching the crash-fault model). Self-sends are free and
  /// immediate: the paper's cost model charges only for bus transmissions.
  void send(MachineId from, MachineId to, const std::string& tag,
            std::size_t bytes, Delivery deliver) override;

  /// Machine lifecycle, driven by the fault injector.
  void set_up(MachineId machine, bool up) override {
    PASO_REQUIRE(machine.value < up_.size(), "unknown machine");
    up_[machine.value] = up;
  }
  bool is_up(MachineId machine) const override {
    PASO_REQUIRE(machine.value < up_.size(), "unknown machine");
    return up_[machine.value];
  }

  /// Chaos plane (driven by paso::ChaosEngine). Disturbance windows model
  /// receiver-side trouble: while `now < until`, inbound messages to the
  /// machine are dropped at delivery time (but the bus transmission still
  /// happened, so it is still charged — lost messages cost real bandwidth)
  /// or delayed by `extra` beyond their transmission end. Self-sends are
  /// local hand-offs and bypass the chaos plane, like they bypass the bus.
  void set_drop_window(MachineId to, sim::SimTime until) {
    PASO_REQUIRE(to.value < chaos_.size(), "unknown machine");
    chaos_[to.value].drop_until = std::max(chaos_[to.value].drop_until, until);
  }
  void set_delay_window(MachineId to, sim::SimTime until, sim::SimTime extra) {
    PASO_REQUIRE(to.value < chaos_.size(), "unknown machine");
    PASO_REQUIRE(extra >= 0, "negative delay");
    chaos_[to.value].delay_until = until;
    chaos_[to.value].extra_delay = extra;
  }
  /// Partition bridge `bridge` (between segments `bridge` and `bridge+1`)
  /// until `until`: messages whose path crosses it while partitioned are
  /// dropped at delivery but still charged — the source bus transmitted
  /// them before the bridge ate them.
  void set_bridge_partition(std::size_t bridge, sim::SimTime until) {
    PASO_REQUIRE(bridge < bridge_partition_until_.size(), "unknown bridge");
    bridge_partition_until_[bridge] =
        std::max(bridge_partition_until_[bridge], until);
  }
  std::uint64_t chaos_dropped() const { return chaos_dropped_; }
  std::uint64_t chaos_delayed() const { return chaos_delayed_; }
  std::uint64_t partition_dropped() const { return partition_dropped_; }

  // --- bounded bridge buffers (Topology::bridge_capacity) -------------------
  /// Crossings shed at a full destination ingress (BridgePolicy::kShed).
  std::uint64_t bridge_shed() const { return bridge_shed_; }
  /// Crossings whose source transmission stalled for ingress room
  /// (BridgePolicy::kBackpressure).
  std::uint64_t bridge_backpressured() const { return bridge_backpressured_; }
  /// Crossings currently queued at `segment`'s bus ingress (reserved but
  /// their destination-bus transmission has not begun at virtual `now`).
  std::size_t bridge_queue_depth(std::size_t segment) const {
    PASO_REQUIRE(segment < ingress_.size(), "unknown segment");
    std::size_t depth = 0;
    for (const sim::SimTime start : ingress_[segment]) {
      if (start > simulator_.now()) ++depth;
    }
    return depth;
  }
  /// High-water ingress depth seen on `segment` (the quantity a
  /// bridge_capacity bound caps).
  std::size_t bridge_queue_peak(std::size_t segment) const {
    PASO_REQUIRE(segment < ingress_peak_.size(), "unknown segment");
    return ingress_peak_[segment];
  }

  std::size_t machine_count() const override { return up_.size(); }
  const CostModel& cost_model() const override { return model_; }
  CostLedger& ledger() override { return ledger_; }
  const CostLedger& ledger() const override { return ledger_; }
  sim::Simulator& simulator() { return simulator_; }
  exec::Executor& executor() override { return simulator_; }
  const exec::Executor& executor() const override { return simulator_; }

  /// The resolved topology (always explicit: a degenerate config becomes a
  /// one-segment topology over `cost_model()`).
  const Topology& topology() const override { return topology_; }
  std::size_t bridge_count() const { return topology_.bridge_count(); }
  const SegmentStats& segment_stats(std::size_t segment) const {
    PASO_REQUIRE(segment < segment_stats_.size(), "unknown segment");
    return segment_stats_[segment];
  }
  /// Cross-segment transmissions so far.
  std::uint64_t crossings() const { return crossings_; }

  /// Install (or clear) the observability handle. The bus is the single
  /// charge site for msg-cost, so this is where every transmission gets its
  /// alpha/beta decomposition recorded and attributed to the active traces.
  void set_obs(obs::Obs o) override { obs_ = o; }
  obs::Obs observability() const override { return obs_; }

  /// Virtual time at which the network next becomes fully free: the max
  /// over segments (for tests asserting the serialization property; on the
  /// degenerate topology this is the classic single bus_free_at).
  sim::SimTime bus_free_at() const {
    return *std::max_element(segment_free_.begin(), segment_free_.end());
  }
  sim::SimTime segment_free_at(std::size_t segment) const {
    PASO_REQUIRE(segment < segment_free_.size(), "unknown segment");
    return segment_free_[segment];
  }

 private:
  struct Disturbance {
    sim::SimTime drop_until = 0;
    sim::SimTime delay_until = 0;
    sim::SimTime extra_delay = 0;
  };

  sim::Simulator& simulator_;
  CostModel model_;
  Topology topology_;
  obs::Obs obs_;
  std::vector<bool> up_;
  std::vector<Disturbance> chaos_;
  CostLedger ledger_;
  std::vector<sim::SimTime> segment_free_;
  std::vector<SegmentStats> segment_stats_;
  std::vector<sim::SimTime> bridge_partition_until_;
  /// Per-segment bridge ingress: destination-bus start times of reserved
  /// crossings, ascending (each reservation starts no earlier than the
  /// previous one ended). A crossing is "in the bridge buffer" from its
  /// arrival until its destination transmission begins; the deque is pruned
  /// at `now`, so its length tracks the real backlog — which is exactly
  /// what grows without bound when a segment is flooded and
  /// bridge_capacity is infinite.
  std::vector<std::deque<sim::SimTime>> ingress_;
  std::vector<std::size_t> ingress_peak_;
  std::uint64_t chaos_dropped_ = 0;
  std::uint64_t chaos_delayed_ = 0;
  std::uint64_t partition_dropped_ = 0;
  std::uint64_t crossings_ = 0;
  std::uint64_t bridge_shed_ = 0;
  std::uint64_t bridge_backpressured_ = 0;
};

}  // namespace paso::net
