// Transport: the network seam the protocol stack sends through.
//
// The PASO stack (GroupService, runtimes, memory servers) is written against
// this interface. Two implementations exist:
//
//   * net::BusNetwork (bus_network.hpp): the paper's serializing bus on the
//     virtual-time simulator — deterministic, the substrate for tests,
//     chaos schedules and the differential oracle.
//   * net::ThreadedTransport (threaded_transport.hpp): a real-clock
//     concurrent transport — one worker thread per machine, bounded
//     lock-free SPSC delivery rings per (segment, machine), a per-segment
//     transmit token preserving the bus's one-message-at-a-time semantics.
//
// Both charge the SAME model costs (alpha + beta*|m| per transmission, per
// the declared wire size) to the CostLedger, so model-cost accounting stays
// comparable across transports; only the clock driving delivery differs.
// tools/trace_diff replays one op trace on both and checks exactly that.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/cost.hpp"
#include "common/ids.hpp"
#include "exec/executor.hpp"
#include "net/topology.hpp"
#include "obs/obs.hpp"

namespace paso::net {

/// Per-tag traffic statistics (tags are protocol-level message kinds such as
/// "store", "mem-read", "ack", "state-xfer").
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  Cost cost = 0;
};

/// Running totals for an experiment. Layers above the network also charge
/// server-side processing effort here so that the paper's `work` measure
/// (sum of time spent across servers) is available alongside msg-cost, and
/// the persistence layer reports its durable writes here so disk space is
/// an accounted resource, not just latency.
///
/// Internally synchronized by a leaf mutex: with the real-clock transports'
/// sharded stack locks (net/shard.hpp), charges arrive concurrently from
/// executions holding disjoint shard sets. The totals stay exactly
/// order-independent — every charged value is an integer or a small dyadic
/// fraction well inside double's exact range, so summation order cannot
/// perturb a bit. `per_tag()` returns a reference and must only be read
/// from a quiescent or globally-excluded context.
class CostLedger {
 public:
  void charge_message(const std::string& tag, std::size_t bytes, Cost cost) {
    std::lock_guard<std::mutex> lock(mu_);
    total_msg_cost_ += cost;
    auto& stats = per_tag_[tag];
    ++stats.messages;
    stats.bytes += bytes;
    stats.cost += cost;
  }

  /// Pre-size the per-machine work table so `work_of` is defined for every
  /// machine from the start of the run, not just machines that happened to
  /// be charged already. Crash/recover cycles must not change the table
  /// shape: a machine's work survives its crashes (the ledger meters the
  /// whole experiment, not a single incarnation).
  void ensure_machines(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    if (work_per_machine_.size() < n) work_per_machine_.resize(n, 0);
    if (disk_bytes_per_machine_.size() < n) {
      disk_bytes_per_machine_.resize(n, 0);
    }
  }

  void charge_work(MachineId machine, Cost amount) {
    std::lock_guard<std::mutex> lock(mu_);
    total_work_ += amount;
    if (machine.value >= work_per_machine_.size()) {
      work_per_machine_.resize(machine.value + 1, 0);
    }
    work_per_machine_[machine.value] += amount;
  }

  /// Durable bytes written by a machine's persistence layer (WAL appends +
  /// checkpoint images). Like work, the totals survive crashes: disk writes
  /// happened whether or not the machine lived to use them.
  void charge_disk(MachineId machine, std::uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    total_disk_bytes_ += bytes;
    if (machine.value >= disk_bytes_per_machine_.size()) {
      disk_bytes_per_machine_.resize(machine.value + 1, 0);
    }
    disk_bytes_per_machine_[machine.value] += bytes;
  }

  Cost total_msg_cost() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_msg_cost_;
  }
  Cost total_work() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_work_;
  }
  Cost work_of(MachineId machine) const {
    std::lock_guard<std::mutex> lock(mu_);
    return machine.value < work_per_machine_.size()
               ? work_per_machine_[machine.value]
               : 0;
  }
  std::uint64_t total_disk_bytes_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_disk_bytes_;
  }
  std::uint64_t disk_bytes_written_of(MachineId machine) const {
    std::lock_guard<std::mutex> lock(mu_);
    return machine.value < disk_bytes_per_machine_.size()
               ? disk_bytes_per_machine_[machine.value]
               : 0;
  }
  const std::map<std::string, TrafficStats>& per_tag() const {
    return per_tag_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    total_msg_cost_ = 0;
    total_work_ = 0;
    total_disk_bytes_ = 0;
    // Keep the table shape: zero the counters without forgetting machines,
    // so `work_of` stays in-range across resets and recover epochs.
    std::fill(work_per_machine_.begin(), work_per_machine_.end(), 0);
    std::fill(disk_bytes_per_machine_.begin(), disk_bytes_per_machine_.end(),
              0);
    per_tag_.clear();
  }

  /// Snapshot of the running totals, used to meter a single operation:
  /// diffing two snapshots yields the paper's (msg-cost, time, work) triple,
  /// where `time` is the largest single-server work delta.
  struct Snapshot {
    Cost msg_cost = 0;
    std::vector<Cost> work;
  };

  Snapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {total_msg_cost_, work_per_machine_};
  }

  CostTriple since(const Snapshot& s) const {
    std::lock_guard<std::mutex> lock(mu_);
    CostTriple t;
    t.msg_cost = total_msg_cost_ - s.msg_cost;
    for (std::size_t i = 0; i < work_per_machine_.size(); ++i) {
      const Cost before = i < s.work.size() ? s.work[i] : 0;
      const Cost delta = work_per_machine_[i] - before;
      t.work += delta;
      if (delta > t.time) t.time = delta;
    }
    return t;
  }

 private:
  mutable std::mutex mu_;
  Cost total_msg_cost_ = 0;
  Cost total_work_ = 0;
  std::uint64_t total_disk_bytes_ = 0;
  std::vector<Cost> work_per_machine_;
  std::vector<std::uint64_t> disk_bytes_per_machine_;
  std::map<std::string, TrafficStats> per_tag_;
};

/// The protocol stack's view of the network: point-to-point sends with
/// model-cost accounting, machine up/down state, and the executor that
/// drives this transport's timers and deliveries.
class Transport {
 public:
  using Delivery = std::function<void()>;

  virtual ~Transport() = default;

  /// Point-to-point send. `deliver` runs at the destination when
  /// transmission completes, unless the destination is down at that moment
  /// (crash => silent drop, matching the crash-fault model). Self-sends are
  /// free and immediate: the cost model charges only for bus transmissions.
  /// Every send declares its wire size explicitly; all cost accounting uses
  /// the declared size, never sizeof.
  virtual void send(MachineId from, MachineId to, const std::string& tag,
                    std::size_t bytes, Delivery deliver) = 0;

  /// Machine lifecycle, driven by the fault plane.
  virtual void set_up(MachineId machine, bool up) = 0;
  virtual bool is_up(MachineId machine) const = 0;

  virtual std::size_t machine_count() const = 0;
  virtual const CostModel& cost_model() const = 0;
  /// The resolved segment topology (a degenerate config resolves to one
  /// segment over cost_model()).
  virtual const Topology& topology() const = 0;

  virtual CostLedger& ledger() = 0;
  virtual const CostLedger& ledger() const = 0;

  /// The Clock/Executor this transport runs on. The protocol stack takes
  /// all its timers, deadlines, backoffs and TTL sweeps from here, so the
  /// identical stack runs on virtual or wall-clock time.
  virtual exec::Executor& executor() = 0;
  virtual const exec::Executor& executor() const = 0;

  /// Install (or clear) the observability handle. The transport is the
  /// single charge site for msg-cost, so this is where every transmission
  /// gets its alpha/beta decomposition recorded.
  virtual void set_obs(obs::Obs o) = 0;
  virtual obs::Obs observability() const = 0;

  /// Run `fn` mutually excluded against all protocol execution on this
  /// transport. On the simulated bus this is a plain call (everything is
  /// one thread); the real-clock transports take every stack shard. External
  /// drivers (benches, the REPL, sync wrappers) must issue operations and
  /// read protocol state through this.
  virtual void run_exclusive(const std::function<void()>& fn) { fn(); }

  /// Run `fn` excluded only against protocol executions whose domain
  /// overlaps `domain` — a bitmask of machine shards (net/shard.hpp). The
  /// sharded real-clock transports let disjoint-domain executions proceed
  /// concurrently; the simulated bus (single-threaded by construction)
  /// treats every domain as exclusive. Callers must pass a superset of the
  /// machines the execution can touch; when in doubt use run_exclusive.
  virtual void run_scoped(std::uint64_t domain,
                          const std::function<void()>& fn) {
    (void)domain;
    run_exclusive(fn);
  }

  /// True when the calling context excludes ALL protocol execution on this
  /// transport — i.e. global-domain work (view installs, crash handling)
  /// may run inline here. Always true on the simulated bus. Protocol code
  /// that must touch machines outside its domain checks this and defers via
  /// defer_exclusive instead of running inline.
  virtual bool context_is_global() const { return true; }

  /// Schedule `fn` to run as soon as possible in a GLOBAL-domain execution
  /// (all shards held). On the simulated bus this is exactly
  /// executor().schedule_after(0, fn) — same event, same ordering — so sim
  /// timelines are unchanged by code that routes through it.
  virtual void defer_exclusive(std::function<void()> fn) {
    executor().schedule_after(0, std::move(fn));
  }

  /// Run `fn` with the ambient domain forced to global, WITHOUT taking any
  /// locks: sends issued inside produce global-domain deliveries. For rare
  /// escape hatches (marker notifications) whose delivery chains can reach
  /// machines outside the sender's domain. Plain call on the simulated bus.
  virtual void with_global_context(const std::function<void()>& fn) { fn(); }

  /// Stop delivering: join worker/timer threads on the threaded transport
  /// (idempotent; pending deliveries are dropped). No-op on the simulated
  /// bus. Owners that outlive their protocol stack call this first so no
  /// thread touches dying objects.
  virtual void shutdown() {}

  std::size_t segment_count() const { return topology().segment_count(); }
  exec::Time now() const { return executor().now(); }
};

}  // namespace paso::net
