#include "net/threaded_transport.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace paso::net {

namespace {

/// Tiny scoped spinlock over an atomic_flag — the per-segment transmit
/// token. Held only for the ring push (no waiting on other locks inside),
/// so spinning is bounded by the other holder's push.
class TokenGuard {
 public:
  explicit TokenGuard(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Busy-wait; pushes are tens of nanoseconds.
    }
  }
  ~TokenGuard() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag& flag_;
};

}  // namespace

ThreadedTransport::ThreadedTransport(CostModel model, std::size_t n,
                                     Topology topology,
                                     ThreadedTransportOptions options)
    : model_(model),
      topology_(topology.resolve(n, model)),
      options_(options),
      shards_(n),
      up_(n) {
  ledger_.ensure_machines(n);
  for (auto& up : up_) up.store(true, std::memory_order_relaxed);
  const std::size_t segments = topology_.segment_count();
  for (std::size_t s = 0; s < segments; ++s) {
    tokens_.push_back(std::make_unique<std::atomic_flag>());
  }
  for (std::size_t s = 0; s < segments; ++s) {
    for (std::size_t m = 0; m < n; ++m) {
      rings_.push_back(
          std::make_unique<SpscRing<Sealed>>(options_.ring_capacity));
    }
  }
  // Timer callbacks are protocol code: run them under the stack shards of
  // the domain captured when they were scheduled, like every delivery and
  // client issue. The capture hook reads the scheduling thread's ambient
  // domain, so timer chains inherit their root execution's domain.
  executor_ = std::make_unique<exec::ThreadedExecutor>(
      [this](exec::Executor::Action&& action, std::uint64_t ctx) {
        DomainLock lock(shards_, ctx);
        DomainScope scope(this, ctx);
        if (!stopping_.load(std::memory_order_relaxed)) action();
      },
      [this] { return context_mask(); });
  for (std::uint32_t m = 0; m < n; ++m) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->overflow.resize(segments);
  }
  // Start the worker threads only after every shared structure above is in
  // place.
  for (std::uint32_t m = 0; m < n; ++m) {
    workers_[m]->thread = std::thread([this, m] { worker_loop(m); });
  }
}

ThreadedTransport::~ThreadedTransport() { shutdown(); }

void ThreadedTransport::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  // Stop the timer loop first (joins its thread: no more timer actions),
  // then the workers. Pending deliveries are dropped without running — the
  // protocol objects they point into may be about to die.
  stopping_.store(true, std::memory_order_release);
  executor_->stop();
  for (auto& worker : workers_) wake(*worker);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ThreadedTransport::set_up(MachineId machine, bool up) {
  PASO_REQUIRE(machine.value < up_.size(), "unknown machine");
  up_[machine.value].store(up, std::memory_order_release);
}

bool ThreadedTransport::is_up(MachineId machine) const {
  PASO_REQUIRE(machine.value < up_.size(), "unknown machine");
  return up_[machine.value].load(std::memory_order_acquire);
}

void ThreadedTransport::set_obs(obs::Obs o) {
  // Install before traffic starts (the Cluster does it at construction):
  // the handle is read on the send path without further synchronization.
  obs_ = o;
}

obs::Obs ThreadedTransport::observability() const { return obs_; }

void ThreadedTransport::run_exclusive(const std::function<void()>& fn) {
  DomainLock lock(shards_, kGlobalDomain);
  DomainScope scope(this, kGlobalDomain);
  fn();
}

void ThreadedTransport::run_scoped(std::uint64_t domain,
                                   const std::function<void()>& fn) {
  DomainLock lock(shards_, domain);
  DomainScope scope(this, domain);
  fn();
}

bool ThreadedTransport::context_is_global() const {
  return context_mask() == kGlobalDomain;
}

void ThreadedTransport::defer_exclusive(std::function<void()> fn) {
  // Re-run `fn` outside the current (narrow) domain: hand it to the timer
  // thread with a forced-global context, so the runner takes every shard.
  // The scheduling context must be global for the capture hook to record
  // kGlobalDomain — force it via TLS for the duration of the schedule call.
  DomainScope scope(this, kGlobalDomain);
  executor_->schedule_after(0, std::move(fn));
}

void ThreadedTransport::with_global_context(const std::function<void()>& fn) {
  // No locks taken: the caller already holds its domain's shards. This only
  // widens the *advertised* context so nested sends capture the global
  // domain (used for cross-domain notification hops whose downstream
  // chains cannot be bounded by the current domain).
  DomainScope scope(this, kGlobalDomain);
  fn();
}

void ThreadedTransport::send(MachineId from, MachineId to,
                             const std::string& tag, std::size_t bytes,
                             Delivery deliver) {
  PASO_REQUIRE(from.value < up_.size() && to.value < up_.size(),
               "unknown machine");
  PASO_REQUIRE(deliver != nullptr, "null delivery");
  if (stopping_.load(std::memory_order_relaxed)) return;
  if (!is_up(from)) return;  // a crashed machine sends nothing

  // The delivery's domain: everything the sending execution may touch,
  // widened by the destination. The delivery can then observe (and extend)
  // exactly the state its cause could — domains only ever widen along a
  // causal chain.
  const DomainMask domain = context_mask() | domain_bit(to.value);

  if (from == to) {
    // Local hand-off: no bus transmission, no cost; runs on the timer
    // thread (under the stack shards of `domain`) as soon as possible —
    // the threaded analogue of the simulator's schedule_after(0).
    DomainScope scope(this, domain);
    executor_->schedule_after(0, std::move(deliver));
    return;
  }

  const std::uint32_t sf = topology_.segment_of(from);
  const std::uint32_t st = topology_.segment_of(to);
  const CostModel& src = topology_.segment_model(sf);

  // Model-cost accounting, identical to the simulated bus: the ledger (and
  // the tracer's per-message records) see the same alpha/beta charges on
  // either transport. The ledger serializes internally; the obs handles are
  // only ever touched under the global domain (context_mask() forces global
  // whenever observability is installed).
  Cost cost = 0;
  Cost alpha_part = 0;
  std::size_t hops = 0;
  bool shed = false;
  if (sf == st) {
    cost = src.message(bytes);
    alpha_part = src.alpha;
    enqueue(st, to, Sealed{std::move(deliver), domain}, kUnboundedBridge);
  } else {
    const CostModel& dst = topology_.segment_model(st);
    hops = sf < st ? st - sf : sf - st;
    const Cost bridge = static_cast<Cost>(hops) * topology_.bridge_cost(bytes);
    crossings_.fetch_add(1, std::memory_order_relaxed);
    // Bounded bridge ingress: the destination overflow lane is this
    // transport's bridge buffer, and it honors the same cap as the sim's
    // ingress deque. Backpressure degrades to shed here — the sender holds
    // the stack lock the consuming worker needs for its execute phase, so
    // blocking for room would deadlock the fabric.
    const std::size_t cap =
        topology_.bounded_bridges() ? topology_.bridge_capacity()
                                    : kUnboundedBridge;
    shed = !enqueue(st, to, Sealed{std::move(deliver), domain}, cap);
    if (shed) {
      // The crossing died at the full ingress: charge the source bus and
      // the bridge hops that actually carried it, never the destination.
      cost = src.message(bytes) + bridge;
      alpha_part =
          src.alpha + static_cast<Cost>(hops) * topology_.bridge_alpha();
      bridge_shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      cost = src.message(bytes) + bridge + dst.message(bytes);
      alpha_part = src.alpha + dst.alpha +
                   static_cast<Cost>(hops) * topology_.bridge_alpha();
    }
  }
  ledger_.charge_message(tag, bytes, cost);
  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("net.messages").inc();
    obs_.metrics->counter("net.bytes").inc(bytes);
    obs_.metrics->gauge("net.cost.alpha").add(alpha_part);
    obs_.metrics->gauge("net.cost.beta").add(cost - alpha_part);
    if (segment_count() > 1) {
      obs_.metrics->counter("net.segment." + std::to_string(sf) + ".messages")
          .inc();
      if (hops > 0) obs_.metrics->counter("net.crossings").inc();
      if (shed) obs_.metrics->counter("net.bridge.shed").inc();
    }
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->record_message(tag, bytes, alpha_part, cost - alpha_part,
                                executor_->now(), sf, st,
                                static_cast<std::uint32_t>(hops));
  }
}

bool ThreadedTransport::enqueue(std::uint32_t segment, MachineId to,
                                Sealed sealed, std::size_t cap) {
  Worker& worker = *workers_[to.value];
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  {
    // The destination segment's transmit token is the single-producer
    // guarantee for ring (segment, to): one message onto a segment's rings
    // at a time, like one message on the bus at a time. (A crossing holds
    // only the destination token — the source bus's serialization has no
    // delivery-side effect when transmission takes zero wall time.)
    TokenGuard token(*tokens_[segment]);
    bool spill;
    {
      std::lock_guard<std::mutex> lock(worker.overflow_mu);
      spill = !worker.overflow[segment].empty();
      if (spill && worker.overflow[segment].size() >= cap) {
        // Bounded bridge ingress already at capacity: shed. The delivery is
        // dropped here, under the token, so the lane can never exceed the
        // cap (the token serializes every producer for this segment).
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
        return false;
      }
    }
    if (!spill) spill = !ring(segment, to.value).try_push(std::move(sealed));
    if (spill) {
      // Ring full (or draining a previous spill): spill to the overflow
      // lane. FIFO per (segment, machine) survives because the producer
      // keeps spilling until the worker has emptied the lane, and the
      // worker always drains ring-then-overflow.
      overflowed_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(worker.overflow_mu);
      worker.overflow[segment].push_back(std::move(sealed));
    }
  }
  wake(worker);
  return true;
}

void ThreadedTransport::wake(Worker& worker) {
  if (worker.parked.load(std::memory_order_seq_cst)) {
    // Briefly entering the worker's mutex pairs with its predicate
    // re-check under the same mutex, so the notify cannot be missed.
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.cv.notify_one();
  }
}

bool ThreadedTransport::workers_idle() const {
  for (const auto& worker : workers_) {
    if (worker->busy.load(std::memory_order_acquire)) return false;
  }
  return true;
}

void ThreadedTransport::worker_loop(std::uint32_t machine) {
  Worker& worker = *workers_[machine];
  const std::size_t segments = topology_.segment_count();
  std::vector<Sealed> batch;
  while (true) {
    batch.clear();
    // Drain phase (lock-free except the overflow lane): ring first, then
    // overflow — overflow entries are always newer than every ring entry
    // present when they spilled.
    for (std::uint32_t s = 0; s < segments; ++s) {
      Sealed d;
      while (ring(s, machine).try_pop(d)) batch.push_back(std::move(d));
      std::lock_guard<std::mutex> lock(worker.overflow_mu);
      auto& lane = worker.overflow[s];
      while (!lane.empty()) {
        batch.push_back(std::move(lane.front()));
        lane.pop_front();
      }
    }

    if (!batch.empty()) {
      worker.busy.store(true, std::memory_order_release);
      // Execute phase: each delivery runs under the stack shards of its
      // sealed domain (sender's domain | this machine), so deliveries
      // bound for disjoint machine sets execute concurrently across
      // workers. The machine's up check happens at execution time,
      // mirroring the simulated bus's delivery-time crash drop.
      for (Sealed& d : batch) {
        DomainLock lock(shards_, d.domain);
        DomainScope scope(this, d.domain);
        if (!stopping_.load(std::memory_order_relaxed) &&
            up_[machine].load(std::memory_order_acquire)) {
          d.fn();
        }
      }
      // Deliveries leave "in flight" only after their effects are visible
      // under the stack lock; busy_ drops last so quiesce() cannot observe
      // inflight==0 with this worker still mid-batch.
      inflight_.fetch_sub(batch.size(), std::memory_order_acq_rel);
      batch.clear();
      worker.busy.store(false, std::memory_order_release);
      continue;
    }

    if (stopping_.load(std::memory_order_acquire)) return;

    // Park. The bounded wait covers the classic store/load race between
    // our parked flag and a producer's push: a missed notify costs at most
    // the wait_for timeout, never a hang.
    worker.parked.store(true, std::memory_order_seq_cst);
    std::unique_lock<std::mutex> lock(worker.mu);
    worker.cv.wait_for(lock, std::chrono::microseconds(500));
    worker.parked.store(false, std::memory_order_seq_cst);
  }
}

bool ThreadedTransport::quiesce(const std::function<bool()>& done,
                                exec::Time timeout_us) {
  const exec::Time deadline = executor_->now() + timeout_us;
  int stable = 0;
  while (stable < 3) {
    // Quiet = nothing moving anywhere: no ring/overflow deliveries, no
    // worker mid-batch, no executor action running, and an *empty* timer
    // queue. The last test is deliberately `== kNever`, not `> now()`:
    // protocol chains hop through future-due timers (processing costs,
    // install costs), and a poll landing between hops would otherwise call
    // the fabric idle mid-chain. Nothing in the stack schedules perpetual
    // timers while idle, so an empty queue is reachable; pathological
    // pollers (an unsatisfiable blocking read) hit the timeout instead.
    bool quiet = inflight_deliveries() == 0 && workers_idle() &&
                 !executor_->running_action() &&
                 executor_->next_due() == exec::kNever;
    if (quiet && done) {
      run_exclusive([&] { quiet = done(); });
    }
    stable = quiet ? stable + 1 : 0;
    if (executor_->now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return true;
}

}  // namespace paso::net
