// Length-prefixed frame codec for the socket transport's wire protocol.
//
// Every byte that crosses the TCP connection between the parent (broker)
// process and a machine endpoint process is part of exactly one frame:
//
//   u32 length | u8 type | u32 machine | u64 seq | payload[length - 13]
//
// `length` counts everything after itself (so the minimum valid value is
// kFrameHeaderBytes = 13) and is capped at kMaxFrameLength — an oversized
// prefix is a protocol error, not an allocation request. All integers are
// little-endian fixed-width; the codec never looks at host struct layout.
//
// Decoding is incremental (`FrameDecoder::feed` + `next`) so torn writes —
// a frame arriving one byte at a time, or split anywhere across reads —
// reassemble correctly, and every malformed input (bad type byte, oversized
// or undersized length prefix, bytes left over at connection close) is
// surfaced as a typed FrameError instead of a hang or UB. A decoder that
// has reported an error is poisoned: the stream position is unknowable, so
// every later call reports the same error and the connection must die.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace paso::net {

enum class FrameType : std::uint8_t {
  kHello = 1,      ///< child -> parent: machine id + handshake token in seq
  kHelloAck = 2,   ///< parent -> child: handshake accepted
  kMsg = 3,        ///< parent -> child: one bus transmission (payload bytes)
  kDeliver = 4,    ///< child -> parent: frame `seq` left the ingress buffer
  kHeartbeat = 5,  ///< child -> parent: liveness beacon
  kShutdown = 6,   ///< parent -> child: drain and exit cleanly
  kBye = 7,        ///< child -> parent: drained, exiting
};

/// True for the types above; anything else on the wire is a protocol error.
bool frame_type_valid(std::uint8_t raw);
const char* frame_type_name(FrameType type);

/// Bytes after the u32 length prefix that every frame carries (type +
/// machine + seq) before its payload.
inline constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 8;

/// Hard cap on the length prefix: 16 MiB. Far above any declared wire size
/// in the system; a prefix beyond it is treated as stream corruption.
inline constexpr std::size_t kMaxFrameLength = (1u << 24) + kFrameHeaderBytes;

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  /// kHello: the endpoint's machine id. kMsg/kDeliver: destination machine.
  std::uint32_t machine = 0;
  /// kMsg/kDeliver: per-connection transmission sequence (FIFO check).
  /// kHello: the spawn token proving this connection is the expected child.
  std::uint64_t seq = 0;
  /// kMsg: the transmission's declared wire bytes. Other types: empty.
  std::string payload;
};

/// Append the encoded frame to `out` (one buffer per connection; callers
/// batch frames into a single write).
void encode_frame(const Frame& frame, std::string& out);

/// Append just the length prefix + header for a frame whose payload is
/// `payload_bytes` long; the caller appends the payload bytes itself. This
/// is the zero-copy half of encode_frame: the socket broker's kMsg payloads
/// are all-zero filler of the declared wire size, so encoding the header
/// and appending zeros directly avoids materializing a payload string per
/// message.
void encode_frame_header(FrameType type, std::uint32_t machine,
                         std::uint64_t seq, std::size_t payload_bytes,
                         std::string& out);

enum class FrameErrorKind {
  kNone = 0,
  kOversizedLength,  ///< length prefix beyond kMaxFrameLength
  kShortLength,      ///< length prefix below the fixed header size
  kBadType,          ///< type byte outside the FrameType enum
  kTruncated,        ///< stream ended mid-frame (finish() with bytes left)
};

const char* frame_error_name(FrameErrorKind kind);

struct DecodeResult {
  /// True when `frame` holds a complete decoded frame.
  bool has_frame = false;
  Frame frame;
  /// kNone while the stream is healthy; anything else poisons the decoder.
  FrameErrorKind error = FrameErrorKind::kNone;
};

class FrameDecoder {
 public:
  /// Append raw stream bytes. Safe to call with any split, including one
  /// byte at a time.
  void feed(const char* data, std::size_t n);

  /// Pull the next complete frame. {has_frame=false, error=kNone} means
  /// "need more bytes". Once an error is returned the decoder is poisoned
  /// and every later next()/finish() repeats it.
  DecodeResult next();

  /// Declare end-of-stream: any buffered partial frame becomes a typed
  /// kTruncated error (a clean close lands exactly between frames).
  DecodeResult finish();

  /// Bytes buffered but not yet decoded (0 between frames).
  std::size_t pending_bytes() const { return buffer_.size() - offset_; }
  bool poisoned() const { return error_ != FrameErrorKind::kNone; }

  /// When set, next() leaves frame.payload empty instead of copying it out
  /// of the buffer. For consumers that only read the header (the machine
  /// endpoint acks kMsg by seq and never looks at the filler payload):
  /// steady state then allocates nothing per frame.
  void set_skip_payload(bool skip) { skip_payload_ = skip; }

  /// Compaction probes, for tests asserting the decoder's cost stays linear
  /// in bytes fed (no quadratic erase-from-front behavior): how many times
  /// the consumed prefix was compacted away, and how many live bytes those
  /// compactions moved.
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  DecodeResult fail(FrameErrorKind kind);

  std::string buffer_;
  std::size_t offset_ = 0;  ///< consumed prefix of buffer_
  FrameErrorKind error_ = FrameErrorKind::kNone;
  bool skip_payload_ = false;
  std::uint64_t compactions_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace paso::net
