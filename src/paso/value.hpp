// Field values of PASO objects.
//
// An object in a PASO memory is "a tuple of values drawn from ground sets of
// basic data types" (Section 1). The ground sets here are 64-bit integers,
// reals, text and booleans — the types operational Linda systems support.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace paso {

using Value = std::variant<std::int64_t, double, std::string, bool>;

enum class FieldType : std::uint8_t { kInt = 0, kReal = 1, kText = 2, kBool = 3 };

inline FieldType type_of(const Value& v) {
  return static_cast<FieldType>(v.index());
}

inline const char* field_type_name(FieldType t) {
  switch (t) {
    case FieldType::kInt:
      return "int";
    case FieldType::kReal:
      return "real";
    case FieldType::kText:
      return "text";
    case FieldType::kBool:
      return "bool";
  }
  return "?";
}

/// Hash of a value, used by the hash-indexed stores and the marker index.
/// Distinct types never collide on purpose — the variant index is not mixed
/// in — because index probes verify with a full match anyway.
inline std::size_t value_hash(const Value& v) {
  return std::visit(
      [](const auto& x) -> std::size_t {
        using X = std::decay_t<decltype(x)>;
        return std::hash<X>{}(x);
      },
      v);
}

/// Declared wire size of a value, used by the cost model (alpha + beta*|msg|).
inline std::size_t wire_size(const Value& v) {
  switch (type_of(v)) {
    case FieldType::kInt:
    case FieldType::kReal:
      return 8;
    case FieldType::kBool:
      return 1;
    case FieldType::kText:
      return 4 + std::get<std::string>(v).size();
  }
  return 0;
}

std::string value_to_string(const Value& v);

}  // namespace paso
