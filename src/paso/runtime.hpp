// Per-machine PASO runtime: the client side of the system.
//
// Implements the macro expansions of Appendix A — insert, read, read&del —
// on behalf of the compute processes of one machine, plus the blocking
// variants Section 4.3 discusses (busy-wait polling, read markers, and the
// hybrid marker-with-expiry scheme). The runtime consults the write groups
// through GroupService, takes the local fast path for classes whose write
// group this machine belongs to, restricts remote reads to read groups, and
// feeds every observation to the machine's ReplicationPolicy.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "paso/classes.hpp"
#include "paso/memory_server.hpp"
#include "paso/messages.hpp"
#include "paso/replication_policy.hpp"
#include "semantics/history.hpp"
#include "vsync/group_service.hpp"

namespace paso {

struct RuntimeConfig {
  /// Fault-tolerance degree: write groups must keep more than lambda - k
  /// members; read groups have at most lambda + 1 (Sections 3.1, 4.3).
  std::size_t lambda = 1;
  /// Route remote reads to a read group of size <= lambda + 1 instead of the
  /// whole write group.
  bool use_read_groups = true;
  /// Rotate the read group across the write group's members on successive
  /// reads instead of always using the basic support. Spreads query work
  /// (the response-time concern the paper defers to load balancing [13]);
  /// any lambda+1 subset satisfies the fault-tolerance condition.
  bool rotate_read_groups = false;
  /// Busy-wait retry interval for blocking operations in polling mode.
  sim::SimTime poll_interval = 200;
  /// Marker lifetime in the hybrid blocking scheme; markers are re-placed
  /// (which re-probes the class) when they expire.
  sim::SimTime marker_ttl = 5000;
};

enum class BlockingMode {
  kPoll,    ///< busy-wait, cycling among the classes (Section 4.3)
  kMarker,  ///< leave read markers; hybrid expiry per RuntimeConfig
};

class PasoRuntime final : public GroupControl {
 public:
  using InsertCallback = std::function<void()>;
  using SearchCallback = std::function<void(SearchResponse)>;
  /// Provider of B(C), the basic support of a class (used as read group).
  using BasicSupportProvider =
      std::function<std::vector<MachineId>(ClassId)>;

  static constexpr sim::SimTime kNoDeadline =
      std::numeric_limits<sim::SimTime>::infinity();

  PasoRuntime(MachineId self, const Schema& schema,
              vsync::GroupService& groups, MemoryServer& server,
              RuntimeConfig config,
              semantics::HistoryRecorder* history = nullptr);

  // --- PASO primitives (Appendix A) ----------------------------------------

  /// insert(o): gcast store(o) to wg(obj-clss(o)). Returns the identity
  /// assigned to the object; `done` fires when the (empty) response arrives.
  ObjectId insert(ProcessId process, Tuple fields, InsertCallback done = {});

  /// read(sc): walk sc-list(sc); local mem-read where this machine is in
  /// the write group, read-group gcast otherwise. Non-blocking: `cb`
  /// receives fail (nullopt) when every class came up empty.
  void read(ProcessId process, SearchCriterion sc, SearchCallback cb);

  /// read&del(sc): gcast remove(sc, C) along sc-list(sc); no local shortcut
  /// because every write-group member must apply the removal.
  void read_del(ProcessId process, SearchCriterion sc, SearchCallback cb);

  // --- blocking variants (Section 4.3) --------------------------------------

  void read_blocking(ProcessId process, SearchCriterion sc, SearchCallback cb,
                     BlockingMode mode = BlockingMode::kMarker,
                     sim::SimTime deadline = kNoDeadline);
  void read_del_blocking(ProcessId process, SearchCriterion sc,
                         SearchCallback cb,
                         BlockingMode mode = BlockingMode::kMarker,
                         sim::SimTime deadline = kNoDeadline);

  // --- GroupControl ---------------------------------------------------------

  void request_join(ClassId cls) override;
  /// request_join with a completion signal (used by the recovery path to
  /// detect the end of the initialization phase).
  void request_join(ClassId cls, std::function<void(bool)> done);
  void request_leave(ClassId cls) override;
  bool is_member(ClassId cls) const override;
  bool is_basic_support(ClassId cls) const override;
  std::size_t live_count(ClassId cls) const override;

  // --- wiring ---------------------------------------------------------------

  void set_policy(std::unique_ptr<ReplicationPolicy> policy);
  ReplicationPolicy* policy() { return policy_.get(); }
  void set_basic_support_provider(BasicSupportProvider provider) {
    basic_support_ = std::move(provider);
  }

  /// Delivery point for marker notifications addressed to this machine.
  void on_marker_notification(std::uint64_t marker_id,
                              const PasoObject& object);

  /// Crash: all client-side state of in-flight operations dies with the
  /// machine. Insert sequence counters survive — they model the epoch
  /// component of object identities, which must stay unique across restarts
  /// (A2 requires at-most-one insert per identity).
  void on_machine_crash();

  MachineId self() const { return self_; }
  const Schema& schema() const { return schema_; }
  vsync::GroupService& groups() { return groups_; }
  MemoryServer& server() { return server_; }
  const RuntimeConfig& config() const { return config_; }

  /// Outstanding operations (non-blocking in flight + active blocking).
  std::size_t inflight() const { return inflight_; }

 private:
  struct BlockingOp {
    std::uint64_t id = 0;
    ProcessId process;
    semantics::OpKind kind = semantics::OpKind::kRead;
    SearchCriterion criterion;
    SearchCallback cb;
    BlockingMode mode = BlockingMode::kMarker;
    sim::SimTime deadline = kNoDeadline;
    std::vector<ClassId> classes;
    std::uint64_t history_id = 0;
    bool has_history = false;
    bool claiming = false;  ///< read&del claim gcast in flight
  };

  void read_class_chain(ProcessId process, SearchCriterion sc,
                        std::vector<ClassId> classes, std::size_t index,
                        SearchCallback cb);
  void read_del_class_chain(ProcessId process, SearchCriterion sc,
                            std::vector<ClassId> classes, std::size_t index,
                            SearchCallback cb);
  std::vector<MachineId> read_group_of(ClassId cls) const;
  GroupName group_of(ClassId cls) const { return schema_.group_name(cls); }

  void start_blocking(ProcessId process, SearchCriterion sc, SearchCallback cb,
                      semantics::OpKind kind, BlockingMode mode,
                      sim::SimTime deadline);
  void blocking_poll(std::uint64_t op_id);
  void place_markers(std::uint64_t op_id);
  void cancel_markers(const BlockingOp& op);
  void blocking_candidate(std::uint64_t op_id, const PasoObject& object);
  void finish_blocking(std::uint64_t op_id, SearchResponse result);

  void record_return(std::uint64_t history_id, bool has_history,
                     SearchResponse result);

  MachineId self_;
  const Schema& schema_;
  vsync::GroupService& groups_;
  MemoryServer& server_;
  RuntimeConfig config_;
  semantics::HistoryRecorder* history_;
  std::unique_ptr<ReplicationPolicy> policy_;
  BasicSupportProvider basic_support_;

  std::unordered_map<ProcessId, std::uint64_t> insert_seq_;
  std::unordered_map<std::uint32_t, std::size_t> read_rotation_;
  std::set<std::uint32_t> join_pending_;
  std::set<std::uint32_t> leave_pending_;
  std::map<std::uint64_t, BlockingOp> blocking_;
  std::uint64_t next_blocking_id_ = 1;
  std::size_t inflight_ = 0;
  std::uint64_t crash_epoch_ = 0;
};

}  // namespace paso
