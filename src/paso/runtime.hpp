// Per-machine PASO runtime: the client side of the system.
//
// Implements the macro expansions of Appendix A — insert, read, read&del —
// on behalf of the compute processes of one machine, plus the blocking
// variants Section 4.3 discusses (busy-wait polling, read markers, and the
// hybrid marker-with-expiry scheme). The runtime consults the write groups
// through GroupService, takes the local fast path for classes whose write
// group this machine belongs to, restricts remote reads to read groups, and
// feeds every observation to the machine's ReplicationPolicy.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "paso/classes.hpp"
#include "paso/memory_server.hpp"
#include "paso/messages.hpp"
#include "paso/replication_policy.hpp"
#include "semantics/history.hpp"
#include "vsync/batcher.hpp"
#include "vsync/group_service.hpp"

namespace paso {

/// Client-edge admission control for the robust entry points (SEDA-style
/// per-stage admission: bound the stage's concurrency, handle the excess
/// explicitly instead of letting queues grow without limit). The gate
/// applies only to the *_robust operations — the plain primitives, and
/// every baseline bench built on them, stay byte-identical.
enum class AdmissionMode {
  kOff,      ///< no gate (legacy behavior)
  kReject,   ///< over-limit ops fail fast with OpStatus::kOverloaded
  kQueue,    ///< over-limit ops park in a bounded FIFO until capacity frees
  kDegrade,  ///< over-limit reads shed fan-out to λ−k targets; updates reject
};

struct RuntimeConfig {
  /// Fault-tolerance degree: write groups must keep more than lambda - k
  /// members; read groups have at most lambda + 1 (Sections 3.1, 4.3).
  std::size_t lambda = 1;
  /// Route remote reads to a read group of size <= lambda + 1 instead of the
  /// whole write group.
  bool use_read_groups = true;
  /// Rotate the read group across the write group's members on successive
  /// reads instead of always using the basic support. Spreads query work
  /// (the response-time concern the paper defers to load balancing [13]);
  /// any lambda+1 subset satisfies the fault-tolerance condition.
  bool rotate_read_groups = false;
  /// Sticky two-choice rotation (requires rotate_read_groups): instead of
  /// advancing the read-group window on every read, keep the current
  /// window and probe one rotating alternative per read, moving only when
  /// the alternative's most-loaded replica carries measurably less load
  /// than the current one — the balanced-allocations idea of [13]. Load is
  /// the per-replica work counter in the cost ledger, standing in for the
  /// load reports servers would piggyback on responses; blind per-read
  /// rotation keeps hammering replicas that are hot from *other* classes,
  /// sticky two-choice steers around them.
  bool sticky_rotation = false;
  /// Hysteresis for sticky_rotation: the probed window wins only when its
  /// load is below current * (1 - sticky_margin), so equal-load windows
  /// never flap.
  double sticky_margin = 0.05;
  /// Busy-wait retry interval for blocking operations in polling mode.
  sim::SimTime poll_interval = 200;
  /// Marker lifetime in the hybrid blocking scheme; markers are re-placed
  /// (which re-probes the class) when they expire.
  sim::SimTime marker_ttl = 5000;

  // --- gcast operation batching ---------------------------------------------

  /// Coalescing window for same-route store/mem-read/remove gcasts: ops
  /// issued within this much simulated time share one gcast (one 2*alpha).
  /// 0 — the default — disables batching; every op is its own gcast, the
  /// exact pre-batching behavior.
  sim::SimTime batch_window = 0;
  /// A route's pending ops are dispatched as soon as this many accumulate,
  /// without waiting out the window.
  std::size_t max_batch = 16;

  // --- robust-operation machinery (crash-recovery hardening) ---------------

  /// Default deadline for the *_robust entry points, measured from issue;
  /// kNever = wait forever. When the deadline passes, the op fails over to
  /// an explicit kTimeout report — it never blocks its caller forever.
  sim::SimTime op_deadline = sim::kNever;
  /// Delay before a robust op re-issues its gcast when no response arrived
  /// (e.g. the response was orphaned by a crash or lost in a drop window).
  /// kNever disables retries; the deadline alone still applies.
  sim::SimTime retry_backoff = sim::kNever;
  /// Multiplier applied to the backoff after every retry.
  double retry_backoff_factor = 2.0;
  /// Retry budget per robust op (attempts = 1 initial + retries);
  /// 0 = unbounded.
  std::size_t max_attempts = 0;
  /// When true, a blocking op that hits its deadline is recorded in the
  /// history as *abandoned* (maximal pessimism) instead of as a clean fail.
  /// Required under chaos: at the deadline a probe's response — or a claim's
  /// removal — may still be in flight, so "fail" would overclaim. Off by
  /// default to preserve the fault-free accounting exactly.
  bool pessimistic_timeouts = false;

  // --- admission control (overload survival) --------------------------------

  /// What to do with a robust op issued while `admission_limit` robust ops
  /// are already running on this machine. kOff (default) admits everything,
  /// exactly the legacy behavior.
  AdmissionMode admission = AdmissionMode::kOff;
  /// Robust ops this runtime runs concurrently before the gate trips.
  std::size_t admission_limit = 64;
  /// kQueue only: parked ops beyond the active limit; when the parking lot
  /// is also full the op is rejected (queue-then-reject, so the queue is a
  /// shock absorber, not a second unbounded buffer).
  std::size_t admission_queue_limit = 256;
};

/// Outcome of a robust operation.
enum class OpStatus {
  kOk,        ///< completed; `object` holds the result for read/read&del
  kFail,      ///< servers answered definitively: no matching object
  kTimeout,     ///< deadline passed with no definitive answer (explicit error)
  kDegraded,    ///< refused: write group at/below the λ−k boundary (§4.1)
  kOverloaded,  ///< refused at the client edge by admission control
};

const char* op_status_name(OpStatus status);

struct OpReport {
  OpStatus status = OpStatus::kFail;
  SearchResponse object;      ///< engaged iff status == kOk on a search
  std::size_t attempts = 0;   ///< gcast attempts issued (1 = no retries)
};

enum class BlockingMode {
  kPoll,    ///< busy-wait, cycling among the classes (Section 4.3)
  kMarker,  ///< leave read markers; hybrid expiry per RuntimeConfig
};

class PasoRuntime final : public GroupControl {
 public:
  using InsertCallback = std::function<void()>;
  using SearchCallback = std::function<void(SearchResponse)>;
  using ReportCallback = std::function<void(OpReport)>;
  /// Provider of B(C), the basic support of a class (used as read group).
  using BasicSupportProvider =
      std::function<std::vector<MachineId>(ClassId)>;

  static constexpr sim::SimTime kNoDeadline =
      std::numeric_limits<sim::SimTime>::infinity();

  PasoRuntime(MachineId self, const Schema& schema,
              vsync::GroupService& groups, MemoryServer& server,
              RuntimeConfig config,
              semantics::HistoryRecorder* history = nullptr);

  // --- PASO primitives (Appendix A) ----------------------------------------

  /// insert(o): gcast store(o) to wg(obj-clss(o)). Returns the identity
  /// assigned to the object; `done` fires when the (empty) response arrives.
  ObjectId insert(ProcessId process, Tuple fields, InsertCallback done = {});

  /// read(sc): walk sc-list(sc); local mem-read where this machine is in
  /// the write group, read-group gcast otherwise. Non-blocking: `cb`
  /// receives fail (nullopt) when every class came up empty.
  void read(ProcessId process, SearchCriterion sc, SearchCallback cb);

  /// read&del(sc): gcast remove(sc, C) along sc-list(sc); no local shortcut
  /// because every write-group member must apply the removal.
  void read_del(ProcessId process, SearchCriterion sc, SearchCallback cb);

  // --- robust variants (crash-recovery hardening) ---------------------------
  //
  // Same semantics as the primitives above, plus: a per-operation deadline
  // (absolute sim time; kNoDeadline = now + RuntimeConfig::op_deadline),
  // retry-with-backoff when the gcast is orphaned by a view change or lost
  // in a chaos window, and an explicit kDegraded refusal when the target
  // write group no longer satisfies |wg(C)| > λ−k. The report callback
  // always fires exactly once (unless this machine crashes first): robust
  // operations never block forever. Retries are idempotent end to end — an
  // insert re-sends the *same* identity and the servers dedup it; a
  // read&del re-uses one removal token, so replicas replay their original
  // decision instead of deleting a second object.

  ObjectId insert_robust(ProcessId process, Tuple fields,
                         ReportCallback report = {},
                         sim::SimTime deadline = kNoDeadline);
  void read_robust(ProcessId process, SearchCriterion sc,
                   ReportCallback report,
                   sim::SimTime deadline = kNoDeadline);
  void read_del_robust(ProcessId process, SearchCriterion sc,
                       ReportCallback report,
                       sim::SimTime deadline = kNoDeadline);

  /// λ−k degradation test (§4.1): true when the class's write group has at
  /// most λ−k operational members, k being the number of machines currently
  /// down — i.e. the fault-tolerance condition no longer holds for C and
  /// further updates risk data loss. Robust ops are refused while degraded.
  bool degraded(ClassId cls) const;

  // --- blocking variants (Section 4.3) --------------------------------------

  void read_blocking(ProcessId process, SearchCriterion sc, SearchCallback cb,
                     BlockingMode mode = BlockingMode::kMarker,
                     sim::SimTime deadline = kNoDeadline);
  void read_del_blocking(ProcessId process, SearchCriterion sc,
                         SearchCallback cb,
                         BlockingMode mode = BlockingMode::kMarker,
                         sim::SimTime deadline = kNoDeadline);

  // --- GroupControl ---------------------------------------------------------

  void request_join(ClassId cls) override;
  /// request_join with a completion signal (used by the recovery path to
  /// detect the end of the initialization phase).
  void request_join(ClassId cls, std::function<void(bool)> done);
  void request_leave(ClassId cls) override;
  bool is_member(ClassId cls) const override;
  bool is_basic_support(ClassId cls) const override;
  std::size_t live_count(ClassId cls) const override;

  // --- wiring ---------------------------------------------------------------

  void set_policy(std::unique_ptr<ReplicationPolicy> policy);
  ReplicationPolicy* policy() { return policy_.get(); }
  /// Install the observability handle (forwarded to this runtime's batcher;
  /// the cluster installs it on the server/groups/network separately).
  void set_obs(obs::Obs o) {
    obs_ = o;
    batcher_.set_obs(o);
  }
  void set_basic_support_provider(BasicSupportProvider provider) {
    basic_support_ = std::move(provider);
  }

  /// Delivery point for marker notifications addressed to this machine.
  void on_marker_notification(std::uint64_t marker_id,
                              const PasoObject& object);

  /// View-change hook (wired to GroupService::add_view_listener by the
  /// cluster): a membership change — in particular a completed state
  /// transfer after recovery — re-routes this runtime's in-flight robust
  /// operations by resetting their backoff and retrying promptly.
  void on_group_view_change(const GroupName& group, const vsync::View& view);

  /// Crash: all client-side state of in-flight operations dies with the
  /// machine. Insert sequence counters survive — they model the epoch
  /// component of object identities, which must stay unique across restarts
  /// (A2 requires at-most-one insert per identity).
  void on_machine_crash();

  MachineId self() const { return self_; }
  const Schema& schema() const { return schema_; }
  vsync::GroupService& groups() { return groups_; }
  MemoryServer& server() { return server_; }
  const RuntimeConfig& config() const { return config_; }
  /// Per-machine knob overrides (benches/tests mixing rotation modes across
  /// machines in one cluster). Change knobs between operations only.
  RuntimeConfig& mutable_config() { return config_; }
  /// Reads of `cls` this runtime has issued (local or remote) — the
  /// observed reader population placement-aware replication consumes.
  std::uint64_t reads_issued(ClassId cls) const {
    const auto it = reads_issued_.find(cls.value);
    return it == reads_issued_.end() ? 0 : it->second;
  }
  /// The batching layer store/mem-read/remove gcasts route through (markers
  /// go to `groups()` directly).
  vsync::GcastBatcher& batcher() { return batcher_; }

  /// Outstanding operations (non-blocking in flight + active blocking).
  std::size_t inflight() const { return inflight_; }

  /// Robustness counters (for tests and the chaos bench).
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t degraded_rejections() const { return degraded_rejections_; }

  /// Admission-control counters (see RuntimeConfig::admission).
  std::uint64_t admission_rejections() const { return admission_rejections_; }
  std::uint64_t admission_parked() const { return admission_parked_; }
  std::size_t admission_queue_depth() const { return admission_queue_.size(); }
  std::size_t admitted_robust() const { return admitted_; }

 private:
  struct BlockingOp {
    std::uint64_t id = 0;
    ProcessId process;
    semantics::OpKind kind = semantics::OpKind::kRead;
    SearchCriterion criterion;
    SearchCallback cb;
    BlockingMode mode = BlockingMode::kMarker;
    sim::SimTime deadline = kNoDeadline;
    std::vector<ClassId> classes;
    std::uint64_t history_id = 0;
    bool has_history = false;
    bool claiming = false;  ///< read&del claim gcast in flight
    obs::TraceId trace = 0;
    sim::SimTime issued_at = 0;
  };

  struct RobustOp {
    std::uint64_t id = 0;
    ProcessId process;
    semantics::OpKind kind = semantics::OpKind::kRead;
    std::vector<ClassId> classes;
    std::optional<StoreMsg> store;  ///< insert: re-sent verbatim on retry
    SearchCriterion criterion;      ///< read / read&del
    std::uint64_t remove_token = 0;  ///< read&del: one token across retries
    sim::SimTime deadline = kNoDeadline;
    sim::SimTime backoff = kNoDeadline;
    std::size_t attempts = 0;
    std::uint64_t history_id = 0;
    bool has_history = false;
    ReportCallback report;
    sim::EventId timer{};
    bool timer_armed = false;
    obs::TraceId trace = 0;
    sim::SimTime issued_at = 0;
    bool admitted = false;   ///< counts against admission_limit until finish
    bool parked = false;     ///< waiting in the admission queue (kQueue)
    std::size_t fanout_cap = 0;  ///< kDegrade: read fan-out cap (0 = none)
  };

  void read_class_chain(ProcessId process, SearchCriterion sc,
                        std::vector<ClassId> classes, std::size_t index,
                        SearchCallback cb, obs::TraceId trace = 0,
                        std::size_t fanout_cap = 0);
  void read_del_class_chain(ProcessId process, SearchCriterion sc,
                            std::vector<ClassId> classes, std::size_t index,
                            std::uint64_t token, SearchCallback cb,
                            obs::TraceId trace = 0);
  std::vector<MachineId> read_group_of(ClassId cls) const;
  GroupName group_of(ClassId cls) const { return schema_.group_name(cls); }
  /// Sticky two-choice: the rotation offset to read from, given the
  /// current view members (sorted) and the read-group window size.
  std::size_t sticky_start(ClassId cls,
                           const std::vector<MachineId>& members,
                           std::size_t window);

  void start_blocking(ProcessId process, SearchCriterion sc, SearchCallback cb,
                      semantics::OpKind kind, BlockingMode mode,
                      sim::SimTime deadline);
  void blocking_poll(std::uint64_t op_id);
  void place_markers(std::uint64_t op_id);
  void cancel_markers(const BlockingOp& op);
  void blocking_candidate(std::uint64_t op_id, const PasoObject& object);
  void finish_blocking(std::uint64_t op_id, SearchResponse result,
                       bool timed_out = false);

  std::uint64_t start_robust(ProcessId process, semantics::OpKind kind,
                             RobustOp op, sim::SimTime deadline);
  void robust_attempt(std::uint64_t op_id);
  void robust_arm_timer(std::uint64_t op_id);
  void robust_timer_fired(std::uint64_t op_id);
  void robust_finish(std::uint64_t op_id, OpStatus status,
                     SearchResponse object);
  /// Un-park queued ops while the gate has room (kQueue drain).
  void admission_drain();
  /// λ−k read fan-out under AdmissionMode::kDegrade (k = machines down).
  std::size_t degraded_fanout() const;
  std::uint64_t next_remove_token();
  sim::SimTime resolve_deadline(sim::SimTime deadline) const;

  void record_return(std::uint64_t history_id, bool has_history,
                     SearchResponse result);

  /// Trace/metric helpers; all no-ops with observability disabled.
  obs::TraceId trace_begin(const char* op);
  void trace_finish(obs::TraceId trace, const char* status,
                    sim::SimTime issued_at);

  MachineId self_;
  const Schema& schema_;
  vsync::GroupService& groups_;
  MemoryServer& server_;
  RuntimeConfig config_;
  obs::Obs obs_;
  vsync::GcastBatcher batcher_;
  semantics::HistoryRecorder* history_;
  std::unique_ptr<ReplicationPolicy> policy_;
  BasicSupportProvider basic_support_;

  std::unordered_map<ProcessId, std::uint64_t> insert_seq_;
  std::unordered_map<std::uint32_t, std::size_t> read_rotation_;
  std::unordered_map<std::uint32_t, std::size_t> sticky_anchor_;
  std::unordered_map<std::uint32_t, std::uint64_t> reads_issued_;
  std::set<std::uint32_t> join_pending_;
  std::set<std::uint32_t> leave_pending_;
  std::map<std::uint64_t, BlockingOp> blocking_;
  std::uint64_t next_blocking_id_ = 1;
  std::map<std::uint64_t, RobustOp> robust_;
  std::uint64_t next_robust_id_ = 1;
  std::uint64_t next_remove_seq_ = 1;
  std::size_t inflight_ = 0;
  std::uint64_t crash_epoch_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t degraded_rejections_ = 0;
  /// Admission gate (RuntimeConfig::admission): robust ops currently
  /// admitted, the FIFO of parked op ids (kQueue), and totals.
  std::size_t admitted_ = 0;
  std::deque<std::uint64_t> admission_queue_;
  std::uint64_t admission_rejections_ = 0;
  std::uint64_t admission_parked_ = 0;
};

}  // namespace paso
