#include "paso/criteria.hpp"

#include <sstream>

namespace paso {

std::string value_to_string(const Value& v) {
  std::ostringstream os;
  switch (type_of(v)) {
    case FieldType::kInt:
      os << std::get<std::int64_t>(v);
      break;
    case FieldType::kReal:
      os << std::get<double>(v);
      break;
    case FieldType::kText:
      os << '"' << std::get<std::string>(v) << '"';
      break;
    case FieldType::kBool:
      os << (std::get<bool>(v) ? "true" : "false");
      break;
  }
  return os.str();
}

std::string tuple_to_string(const Tuple& tuple) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i) os << ", ";
    os << value_to_string(tuple[i]);
  }
  os << ')';
  return os.str();
}

std::string object_to_string(const PasoObject& object) {
  std::ostringstream os;
  os << object.id << tuple_to_string(object.fields);
  return os.str();
}

bool pattern_matches(const FieldPattern& pattern, const Value& value) {
  return std::visit(
      [&value](const auto& p) -> bool {
        using P = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<P, AnyField>) {
          return true;
        } else if constexpr (std::is_same_v<P, TypedAny>) {
          return type_of(value) == p.type;
        } else if constexpr (std::is_same_v<P, Exact>) {
          return value == p.value;
        } else if constexpr (std::is_same_v<P, IntRange>) {
          return type_of(value) == FieldType::kInt &&
                 std::get<std::int64_t>(value) >= p.lo &&
                 std::get<std::int64_t>(value) <= p.hi;
        } else if constexpr (std::is_same_v<P, RealRange>) {
          return type_of(value) == FieldType::kReal &&
                 std::get<double>(value) >= p.lo &&
                 std::get<double>(value) <= p.hi;
        } else if constexpr (std::is_same_v<P, TextPrefix>) {
          return type_of(value) == FieldType::kText &&
                 std::get<std::string>(value).starts_with(p.prefix);
        } else {
          static_assert(std::is_same_v<P, OneOf>);
          for (const Value& candidate : p.values) {
            if (candidate == value) return true;
          }
          return false;
        }
      },
      pattern);
}

bool pattern_admits_type(const FieldPattern& pattern, FieldType type) {
  return std::visit(
      [type](const auto& p) -> bool {
        using P = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<P, AnyField>) {
          return true;
        } else if constexpr (std::is_same_v<P, TypedAny>) {
          return p.type == type;
        } else if constexpr (std::is_same_v<P, Exact>) {
          return type_of(p.value) == type;
        } else if constexpr (std::is_same_v<P, IntRange>) {
          return type == FieldType::kInt;
        } else if constexpr (std::is_same_v<P, RealRange>) {
          return type == FieldType::kReal;
        } else if constexpr (std::is_same_v<P, TextPrefix>) {
          return type == FieldType::kText;
        } else {
          static_assert(std::is_same_v<P, OneOf>);
          for (const Value& candidate : p.values) {
            if (type_of(candidate) == type) return true;
          }
          return false;
        }
      },
      pattern);
}

std::size_t pattern_wire_size(const FieldPattern& pattern) {
  return 1 + std::visit(
                 [](const auto& p) -> std::size_t {
                   using P = std::decay_t<decltype(p)>;
                   if constexpr (std::is_same_v<P, AnyField>) {
                     return 0;
                   } else if constexpr (std::is_same_v<P, TypedAny>) {
                     return 1;
                   } else if constexpr (std::is_same_v<P, Exact>) {
                     return wire_size(p.value);
                   } else if constexpr (std::is_same_v<P, IntRange>) {
                     return 16;
                   } else if constexpr (std::is_same_v<P, RealRange>) {
                     return 16;
                   } else if constexpr (std::is_same_v<P, TextPrefix>) {
                     return 4 + p.prefix.size();
                   } else {
                     static_assert(std::is_same_v<P, OneOf>);
                     std::size_t total = 4;  // count prefix
                     for (const Value& v : p.values) {
                       total += 1 + wire_size(v);  // type byte + payload
                     }
                     return total;
                   }
                 },
                 pattern);
}

bool SearchCriterion::matches(const Tuple& tuple) const {
  if (tuple.size() != fields.size()) return false;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (!pattern_matches(fields[i], tuple[i])) return false;
  }
  return true;
}

bool SearchCriterion::matches(const PasoObject& object) const {
  return matches(object.fields);
}

std::size_t SearchCriterion::wire_size() const {
  std::size_t total = 4;
  for (const FieldPattern& pattern : fields) {
    total += pattern_wire_size(pattern);
  }
  return total;
}

std::string SearchCriterion::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os << ", ";
    std::visit(
        [&os](const auto& p) {
          using P = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<P, AnyField>) {
            os << '?';
          } else if constexpr (std::is_same_v<P, TypedAny>) {
            os << '?' << field_type_name(p.type);
          } else if constexpr (std::is_same_v<P, Exact>) {
            os << value_to_string(p.value);
          } else if constexpr (std::is_same_v<P, IntRange>) {
            os << '[' << p.lo << ".." << p.hi << ']';
          } else if constexpr (std::is_same_v<P, RealRange>) {
            os << '[' << p.lo << ".." << p.hi << ']';
          } else if constexpr (std::is_same_v<P, TextPrefix>) {
            os << '"' << p.prefix << "*\"";
          } else {
            static_assert(std::is_same_v<P, OneOf>);
            os << '{';
            for (std::size_t j = 0; j < p.values.size(); ++j) {
              if (j) os << '|';
              os << value_to_string(p.values[j]);
            }
            os << '}';
          }
        },
        fields[i]);
  }
  os << ']';
  return os.str();
}

SearchCriterion exact_criterion(const Tuple& tuple) {
  SearchCriterion sc;
  sc.fields.reserve(tuple.size());
  for (const Value& v : tuple) sc.fields.emplace_back(Exact{v});
  return sc;
}

}  // namespace paso
