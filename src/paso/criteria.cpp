#include "paso/criteria.hpp"

#include <sstream>

#include "common/require.hpp"

namespace paso {

std::string value_to_string(const Value& v) {
  std::ostringstream os;
  switch (type_of(v)) {
    case FieldType::kInt:
      os << std::get<std::int64_t>(v);
      break;
    case FieldType::kReal:
      os << std::get<double>(v);
      break;
    case FieldType::kText:
      os << '"' << std::get<std::string>(v) << '"';
      break;
    case FieldType::kBool:
      os << (std::get<bool>(v) ? "true" : "false");
      break;
  }
  return os.str();
}

std::string tuple_to_string(const Tuple& tuple) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i) os << ", ";
    os << value_to_string(tuple[i]);
  }
  os << ')';
  return os.str();
}

std::string object_to_string(const PasoObject& object) {
  std::ostringstream os;
  os << object.id << tuple_to_string(object.fields);
  return os.str();
}

namespace {

// Shared Range logic: a value is inside when it carries the bounds' type and
// the order comparisons (strict under an exclusive bound) hold. Bounds of
// disagreeing types make the range empty; no bounds make it universal.
bool range_types_agree(const Range& range) {
  return !(range.lo && range.hi &&
           type_of(range.lo->value) != type_of(range.hi->value));
}

bool range_contains(const Range& range, const Value& value) {
  if (!range_types_agree(range)) return false;
  if (range.lo) {
    if (type_of(value) != type_of(range.lo->value)) return false;
    if (range.lo->exclusive ? !(range.lo->value < value)
                            : value < range.lo->value) {
      return false;
    }
  }
  if (range.hi) {
    if (type_of(value) != type_of(range.hi->value)) return false;
    if (range.hi->exclusive ? !(value < range.hi->value)
                            : range.hi->value < value) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool pattern_matches(const FieldPattern& pattern, const Value& value) {
  return std::visit(
      [&value](const auto& p) -> bool {
        using P = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<P, AnyField>) {
          return true;
        } else if constexpr (std::is_same_v<P, TypedAny>) {
          return type_of(value) == p.type;
        } else if constexpr (std::is_same_v<P, Exact>) {
          return value == p.value;
        } else if constexpr (std::is_same_v<P, Range>) {
          return range_contains(p, value);
        } else if constexpr (std::is_same_v<P, IntRange>) {
          return type_of(value) == FieldType::kInt &&
                 std::get<std::int64_t>(value) >= p.lo &&
                 std::get<std::int64_t>(value) <= p.hi;
        } else if constexpr (std::is_same_v<P, RealRange>) {
          return type_of(value) == FieldType::kReal &&
                 std::get<double>(value) >= p.lo &&
                 std::get<double>(value) <= p.hi;
        } else if constexpr (std::is_same_v<P, TextPrefix>) {
          return type_of(value) == FieldType::kText &&
                 std::get<std::string>(value).starts_with(p.prefix);
        } else {
          static_assert(std::is_same_v<P, OneOf>);
          for (const Value& candidate : p.values) {
            if (candidate == value) return true;
          }
          return false;
        }
      },
      pattern);
}

bool pattern_admits_type(const FieldPattern& pattern, FieldType type) {
  return std::visit(
      [type](const auto& p) -> bool {
        using P = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<P, AnyField>) {
          return true;
        } else if constexpr (std::is_same_v<P, TypedAny>) {
          return p.type == type;
        } else if constexpr (std::is_same_v<P, Exact>) {
          return type_of(p.value) == type;
        } else if constexpr (std::is_same_v<P, Range>) {
          if (!range_types_agree(p)) return false;
          if (p.lo) return type_of(p.lo->value) == type;
          if (p.hi) return type_of(p.hi->value) == type;
          return true;  // unbounded: an untyped wildcard
        } else if constexpr (std::is_same_v<P, IntRange>) {
          return type == FieldType::kInt;
        } else if constexpr (std::is_same_v<P, RealRange>) {
          return type == FieldType::kReal;
        } else if constexpr (std::is_same_v<P, TextPrefix>) {
          return type == FieldType::kText;
        } else {
          static_assert(std::is_same_v<P, OneOf>);
          for (const Value& candidate : p.values) {
            if (type_of(candidate) == type) return true;
          }
          return false;
        }
      },
      pattern);
}

std::size_t pattern_wire_size(const FieldPattern& pattern) {
  return 1 + std::visit(
                 [](const auto& p) -> std::size_t {
                   using P = std::decay_t<decltype(p)>;
                   if constexpr (std::is_same_v<P, AnyField>) {
                     return 0;
                   } else if constexpr (std::is_same_v<P, TypedAny>) {
                     return 1;
                   } else if constexpr (std::is_same_v<P, Exact>) {
                     return wire_size(p.value);
                   } else if constexpr (std::is_same_v<P, Range>) {
                     // Presence/exclusivity flags byte, then a type byte and
                     // payload per present bound.
                     std::size_t total = 1;
                     if (p.lo) total += 1 + wire_size(p.lo->value);
                     if (p.hi) total += 1 + wire_size(p.hi->value);
                     return total;
                   } else if constexpr (std::is_same_v<P, IntRange>) {
                     return 16;
                   } else if constexpr (std::is_same_v<P, RealRange>) {
                     return 16;
                   } else if constexpr (std::is_same_v<P, TextPrefix>) {
                     return 4 + p.prefix.size();
                   } else {
                     static_assert(std::is_same_v<P, OneOf>);
                     std::size_t total = 4;  // count prefix
                     for (const Value& v : p.values) {
                       total += 1 + wire_size(v);  // type byte + payload
                     }
                     return total;
                   }
                 },
                 pattern);
}

bool SearchCriterion::matches(const Tuple& tuple) const {
  if (tuple.size() != fields.size()) return false;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (!pattern_matches(fields[i], tuple[i])) return false;
  }
  return true;
}

bool SearchCriterion::matches(const PasoObject& object) const {
  return matches(object.fields);
}

std::size_t SearchCriterion::wire_size() const {
  std::size_t total = 4;
  for (const FieldPattern& pattern : fields) {
    total += pattern_wire_size(pattern);
  }
  // Ranked selector: field (4) + k (4) + direction flag (1) + hook id (1),
  // signaled by the arity header's top bit so it costs nothing when absent.
  if (top_k) total += 10;
  return total;
}

std::string SearchCriterion::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os << ", ";
    std::visit(
        [&os](const auto& p) {
          using P = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<P, AnyField>) {
            os << '?';
          } else if constexpr (std::is_same_v<P, TypedAny>) {
            os << '?' << field_type_name(p.type);
          } else if constexpr (std::is_same_v<P, Exact>) {
            os << value_to_string(p.value);
          } else if constexpr (std::is_same_v<P, Range>) {
            os << (p.lo && p.lo->exclusive ? '(' : '[');
            if (p.lo) os << value_to_string(p.lo->value);
            else os << '*';
            os << "..";
            if (p.hi) os << value_to_string(p.hi->value);
            else os << '*';
            os << (p.hi && p.hi->exclusive ? ')' : ']');
          } else if constexpr (std::is_same_v<P, IntRange>) {
            os << '[' << p.lo << ".." << p.hi << ']';
          } else if constexpr (std::is_same_v<P, RealRange>) {
            os << '[' << p.lo << ".." << p.hi << ']';
          } else if constexpr (std::is_same_v<P, TextPrefix>) {
            os << '"' << p.prefix << "*\"";
          } else {
            static_assert(std::is_same_v<P, OneOf>);
            os << '{';
            for (std::size_t j = 0; j < p.values.size(); ++j) {
              if (j) os << '|';
              os << value_to_string(p.values[j]);
            }
            os << '}';
          }
        },
        fields[i]);
  }
  os << ']';
  if (top_k) {
    os << " top" << top_k->k << (top_k->descending ? "v" : "^") << "@f"
       << top_k->field;
    if (top_k->score_fn != kNaturalScore) {
      os << "#" << static_cast<int>(top_k->score_fn);
    }
  }
  return os.str();
}

SearchCriterion exact_criterion(const Tuple& tuple) {
  SearchCriterion sc;
  sc.fields.reserve(tuple.size());
  for (const Value& v : tuple) sc.fields.emplace_back(Exact{v});
  return sc;
}

Range range_at_least(Value lo, bool exclusive) {
  return Range{Bound{std::move(lo), exclusive}, std::nullopt};
}

Range range_at_most(Value hi, bool exclusive) {
  return Range{std::nullopt, Bound{std::move(hi), exclusive}};
}

Range range_between(Value lo, Value hi, bool lo_exclusive,
                    bool hi_exclusive) {
  return Range{Bound{std::move(lo), lo_exclusive},
               Bound{std::move(hi), hi_exclusive}};
}

SearchCriterion ranked(SearchCriterion sc, TopK top_k) {
  sc.top_k = top_k;
  return sc;
}

// --- score hooks ------------------------------------------------------------

namespace {

unsigned type_bit(FieldType type) { return 1u << static_cast<unsigned>(type); }

double natural_score(const Value& value) {
  switch (type_of(value)) {
    case FieldType::kInt:
      return static_cast<double>(std::get<std::int64_t>(value));
    case FieldType::kReal:
      return std::get<double>(value);
    case FieldType::kBool:
      return std::get<bool>(value) ? 1.0 : 0.0;
    case FieldType::kText:
      return 0.0;
  }
  return 0.0;
}

std::vector<ScoreHook>& score_registry() {
  static std::vector<ScoreHook> hooks{
      ScoreHook{&natural_score, type_bit(FieldType::kInt) |
                                    type_bit(FieldType::kReal) |
                                    type_bit(FieldType::kBool)}};
  return hooks;
}

}  // namespace

std::uint8_t register_score_hook(ScoreHook hook) {
  auto& hooks = score_registry();
  PASO_REQUIRE(hooks.size() < 256, "score hook registry full");
  PASO_REQUIRE(hook.fn != nullptr, "score hook needs a function");
  hooks.push_back(hook);
  return static_cast<std::uint8_t>(hooks.size() - 1);
}

const ScoreHook& score_hook(std::uint8_t id) {
  auto& hooks = score_registry();
  PASO_REQUIRE(id < hooks.size(), "unknown score hook");
  return hooks[id];
}

double score_value(const Value& value, std::uint8_t hook_id) {
  return score_hook(hook_id).fn(value);
}

bool score_monotone_for(std::uint8_t hook_id, FieldType type) {
  return (score_hook(hook_id).monotone_mask & type_bit(type)) != 0;
}

}  // namespace paso
