// Fault injection (Section 3.1's fault model, driven).
//
// Two drivers share this file. FaultInjector crashes machines at
// exponentially distributed intervals and recovers them after a downtime
// that respects both the failure-detection delay (a machine cannot serve
// with erased memory before the membership service has expelled it) and the
// paper's "initialization phase lasts minutes" floor; it never exceeds
// `max_down` simultaneous failures — the lambda-bounded fault model under
// which the system promises safety. ChaosSchedule / ChaosEngine are the
// deterministic counterpart: a replayable timeline of crash, recover,
// message-delay and message-drop events, either written out explicitly or
// generated from a seed, applied to the cluster with every decision logged
// so two runs of the same seed can be compared event for event. Soak tests
// and benches run workloads under one of the drivers and then check the
// Section 2 axioms.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "paso/cluster.hpp"

namespace paso {

class FaultInjector {
 public:
  struct Options {
    /// Mean virtual time between crash attempts (exponential).
    sim::SimTime mean_time_between_failures = 5000;
    /// Mean downtime beyond the mandatory floor (exponential).
    sim::SimTime mean_repair_time = 2000;
    /// Machines that never crash (e.g. the workload driver's home).
    std::set<std::uint32_t> immune;
    /// Cap on simultaneous failures; defaults to the cluster's lambda.
    std::size_t max_down = SIZE_MAX;
    std::uint64_t seed = 1;
  };

  FaultInjector(Cluster& cluster, Options options);

  /// Begin scheduling crashes. Idempotent.
  void start();
  /// Stop scheduling new crashes; machines already down still recover.
  void stop() { running_ = false; }

  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t recoveries() const { return recoveries_; }
  std::size_t currently_down() const { return down_.size(); }

 private:
  void schedule_next_crash();
  void attempt_crash();
  void recover(std::uint32_t machine);
  sim::SimTime exponential(sim::SimTime mean);

  Cluster& cluster_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  std::set<std::uint32_t> down_;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
};

// ---------------------------------------------------------------------------
// Deterministic chaos schedules

/// One event on a chaos timeline. Times are absolute virtual times.
struct ChaosEvent {
  enum class Kind {
    kCrash,    ///< crash `machine` (erased memory, Section 3.1)
    kRecover,  ///< bring `machine` back through its initialization phase
    kDelay,    ///< messages *to* `machine` gain extra_delay until at+duration
    kDrop,     ///< messages *to* `machine` vanish on delivery until at+duration
    kTornTail,       ///< chop bytes off a WAL tail on `machine`'s disk
    kCorruptRecord,  ///< flip a byte inside a WAL on `machine`'s disk
    kLostFsync,      ///< drop the last whole WAL record (write never landed)
    kBridgePartition,  ///< bridge `machine` drops crossings until at+duration
  };
  Kind kind = Kind::kCrash;
  sim::SimTime at = 0;
  std::uint32_t machine = 0;  ///< kBridgePartition: the bridge index instead
  sim::SimTime duration = 0;  ///< window length (kDelay / kDrop / partition)
  sim::SimTime extra_delay = 0;  ///< added latency (kDelay only)
  std::uint64_t salt = 0;        ///< disk faults: picks the victim class/byte
};

const char* chaos_kind_name(ChaosEvent::Kind kind);

/// A replayable fault timeline: explicit events, or generated from a seed.
struct ChaosSchedule {
  std::vector<ChaosEvent> events;  ///< generate() emits these sorted by `at`
  sim::SimTime horizon = 0;        ///< generation window

  struct GenOptions {
    sim::SimTime horizon = 15000;
    std::size_t crash_count = 2;  ///< crash/recover pairs
    std::size_t drop_count = 2;   ///< drop windows
    std::size_t delay_count = 2;  ///< delay windows
    /// Downtime beyond the mandatory 2 * detection_delay + 1 floor.
    sim::SimTime max_extra_downtime = 2500;
    sim::SimTime max_window = 1200;  ///< longest drop/delay window
    sim::SimTime max_extra_delay = 300;
    /// The target cluster's failure-detection delay (downtime floor input).
    sim::SimTime detection_delay = 50;
    /// Machines never crashed, dropped or delayed (e.g. the test driver's).
    std::set<std::uint32_t> immune;
    /// Disk faults (torn tail / corrupt record / lost fsync) against
    /// machines' durable files. Zero by default — and the draws for these
    /// come after every pre-existing draw, so schedules generated without
    /// disk faults are identical to what earlier versions produced.
    std::size_t disk_fault_count = 0;
    /// Bridge-partition windows: a bridge of the segmented topology drops
    /// every message whose transmission crosses it during the window. Zero
    /// by default, and these draws come after the disk-fault draws — same
    /// seed-stability contract as above. `bridges` is the target topology's
    /// bridge count (segments - 1); with 0 bridges no windows are drawn.
    std::size_t bridge_partition_count = 0;
    std::size_t bridges = 0;
  };

  /// Deterministic: the same (seed, machines, options) always yields the
  /// same schedule. Every crash is paired with a recover after a downtime
  /// of at least 2 * detection_delay + 1 (the failure detector must expel
  /// the machine before it may re-join with erased memory); drop and delay
  /// windows are bounded by max_window so every run terminates.
  static ChaosSchedule generate(std::uint64_t seed, std::size_t machines,
                                GenOptions options);
  static ChaosSchedule generate(std::uint64_t seed, std::size_t machines) {
    return generate(seed, machines, GenOptions{});
  }

  std::string to_string() const;
};

/// Applies a ChaosSchedule to a live cluster, deterministically.
///
/// A schedule generated blindly from a seed cannot know the run's actual
/// fault state, so the engine re-validates each event when it fires and
/// skips those that would leave the lambda fault model (crashing a machine
/// that is already down, exceeding the fault budget, or taking a group's
/// last operational replica). Recovery events that fire before failure
/// detection has expelled the machine are deferred, not dropped. Every
/// decision is appended to an applied-event log; `timeline()` is the run's
/// replay fingerprint — two runs of the same schedule against the same
/// workload must produce identical timelines.
class ChaosEngine {
 public:
  ChaosEngine(Cluster& cluster, ChaosSchedule schedule);

  /// Schedule every event onto the cluster's simulator. Idempotent.
  void start();

  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t windows() const { return windows_; }
  std::uint64_t skipped() const { return skipped_; }
  std::uint64_t deferred() const { return deferred_; }
  std::uint64_t disk_faults() const { return disk_faults_; }
  std::uint64_t partitions() const { return partitions_; }
  const ChaosSchedule& schedule() const { return schedule_; }
  /// Applied-event log, one line per decision, in virtual-time order.
  const std::vector<std::string>& log() const { return log_; }
  /// The log joined with newlines: the replay fingerprint.
  std::string timeline() const;

 private:
  void apply(std::size_t index);
  void fire_recover(std::uint32_t machine);
  void note(sim::SimTime at, const std::string& line);

  Cluster& cluster_;
  ChaosSchedule schedule_;
  bool started_ = false;
  std::vector<std::string> log_;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t disk_faults_ = 0;
  std::uint64_t partitions_ = 0;
};

}  // namespace paso
