// Stochastic fault injection (Section 3.1's fault model, driven).
//
// Crashes machines at exponentially distributed intervals and recovers them
// after a downtime that respects both the failure-detection delay (a
// machine cannot serve with erased memory before the membership service has
// expelled it) and the paper's "initialization phase lasts minutes" floor.
// Never exceeds `max_down` simultaneous failures — the lambda-bounded fault
// model under which the system promises safety. Soak tests and benches run
// workloads under an injector and then check the Section 2 axioms.
#pragma once

#include <set>

#include "common/rng.hpp"
#include "paso/cluster.hpp"

namespace paso {

class FaultInjector {
 public:
  struct Options {
    /// Mean virtual time between crash attempts (exponential).
    sim::SimTime mean_time_between_failures = 5000;
    /// Mean downtime beyond the mandatory floor (exponential).
    sim::SimTime mean_repair_time = 2000;
    /// Machines that never crash (e.g. the workload driver's home).
    std::set<std::uint32_t> immune;
    /// Cap on simultaneous failures; defaults to the cluster's lambda.
    std::size_t max_down = SIZE_MAX;
    std::uint64_t seed = 1;
  };

  FaultInjector(Cluster& cluster, Options options);

  /// Begin scheduling crashes. Idempotent.
  void start();
  /// Stop scheduling new crashes; machines already down still recover.
  void stop() { running_ = false; }

  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t recoveries() const { return recoveries_; }
  std::size_t currently_down() const { return down_.size(); }

 private:
  void schedule_next_crash();
  void attempt_crash();
  void recover(std::uint32_t machine);
  sim::SimTime exponential(sim::SimTime mean);

  Cluster& cluster_;
  Options options_;
  Rng rng_;
  bool running_ = false;
  std::set<std::uint32_t> down_;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace paso
