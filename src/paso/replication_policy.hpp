// Write-group management hooks (Section 5).
//
// The adaptive algorithms of Section 5 decide, per machine and per object
// class, when to join or leave the class's write group. They observe three
// kinds of events — local reads (served locally or remotely), replicated
// updates served by the local server, and view changes — and act through
// GroupControl. The concrete algorithms (Basic counter, doubling/halving,
// support selection) live in src/adaptive/ and plug in here.
#pragma once

#include <cstddef>

#include "paso/classes.hpp"
#include "vsync/view.hpp"

namespace paso {

/// What a replication policy may do to the write groups of its machine.
class GroupControl {
 public:
  virtual ~GroupControl() = default;

  virtual void request_join(ClassId cls) = 0;
  virtual void request_leave(ClassId cls) = 0;
  virtual bool is_member(ClassId cls) const = 0;
  /// Whether this machine belongs to the fixed basic support B(C); basic
  /// members never leave (Section 5.1).
  virtual bool is_basic_support(ClassId cls) const = 0;
  /// |live(C)| at the local replica (0 when not a member).
  virtual std::size_t live_count(ClassId cls) const = 0;
};

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  /// A process on this machine issued a read against class `cls`.
  /// `served_locally` distinguishes the member fast path from a remote
  /// gcast; `remote_targets` is the read-group size the request went to
  /// (lambda + 1 - |F(C)| in the paper's notation), 0 when local.
  virtual void on_local_read(ClassId cls, bool served_locally,
                             std::size_t remote_targets) = 0;

  /// The local server applied a replicated update (store or successful
  /// removal) for `cls` — it is a write-group member paying update work.
  virtual void on_update_served(ClassId cls) = 0;

  /// The write group of `cls` installed a new view.
  virtual void on_view_change(ClassId cls, const vsync::View& view) {
    (void)cls;
    (void)view;
  }

  /// The machine crashed: all policy state dies with its memory.
  virtual void on_machine_reset() {}
};

}  // namespace paso
