#include "paso/runtime.hpp"

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "paso/batching.hpp"

namespace paso {

namespace {

/// Extract the SearchResponse a server produced from the gathered gcast
/// response. A missing or empty body is "fail".
SearchResponse unwrap_search(const std::optional<std::any>& response) {
  if (!response) return std::nullopt;
  if (const auto* r = std::any_cast<SearchResponse>(&*response)) return *r;
  return std::nullopt;
}

}  // namespace

const char* op_status_name(OpStatus status) {
  switch (status) {
    case OpStatus::kOk:
      return "ok";
    case OpStatus::kFail:
      return "fail";
    case OpStatus::kTimeout:
      return "timeout";
    case OpStatus::kDegraded:
      return "degraded";
    case OpStatus::kOverloaded:
      return "overloaded";
  }
  return "?";
}

PasoRuntime::PasoRuntime(MachineId self, const Schema& schema,
                         vsync::GroupService& groups, MemoryServer& server,
                         RuntimeConfig config,
                         semantics::HistoryRecorder* history)
    : self_(self),
      schema_(schema),
      groups_(groups),
      server_(server),
      config_(config),
      batcher_(groups, self,
               vsync::BatcherOptions{config.batch_window, config.max_batch},
               server_batch_combiner(), server_batch_splitter()),
      history_(history) {}

void PasoRuntime::set_policy(std::unique_ptr<ReplicationPolicy> policy) {
  policy_ = std::move(policy);
}

obs::TraceId PasoRuntime::trace_begin(const char* op) {
  const sim::SimTime now = groups_.network().executor().now();
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter(std::string("runtime.ops.") + op, self_).inc();
    obs_.metrics->gauge("runtime.inflight", self_)
        .set(static_cast<double>(inflight_ + 1));
  }
  if (obs_.tracer == nullptr) return 0;
  return obs_.tracer->begin(op, self_, now);
}

void PasoRuntime::trace_finish(obs::TraceId trace, const char* status,
                               sim::SimTime issued_at) {
  if (!obs_.enabled()) return;
  const sim::SimTime now = groups_.network().executor().now();
  if (obs_.metrics != nullptr) {
    obs_.metrics
        ->histogram("runtime.latency", self_,
                    {10, 25, 50, 100, 250, 500, 1000, 2500, 5000})
        .observe(now - issued_at);
    obs_.metrics->gauge("runtime.inflight", self_)
        .set(static_cast<double>(inflight_ > 0 ? inflight_ - 1 : 0));
  }
  if (obs_.tracer != nullptr) obs_.tracer->finish(trace, status, self_, now);
}

void PasoRuntime::record_return(std::uint64_t history_id, bool has_history,
                                SearchResponse result) {
  if (!has_history || history_ == nullptr) return;
  history_->op_returned(history_id, groups_.network().executor().now(),
                        std::move(result));
}

// ---------------------------------------------------------------------------
// insert

ObjectId PasoRuntime::insert(ProcessId process, Tuple fields,
                             InsertCallback done) {
  PASO_REQUIRE(groups_.is_up(self_), "insert issued from a crashed machine");
  const auto cls = schema_.classify(fields);
  PASO_REQUIRE(cls.has_value(), "tuple matches no declared object class");
  const GroupName group = group_of(*cls);
  // The fault-tolerance condition guarantees a live replica at all times; an
  // insert into an empty write group would silently lose the object.
  PASO_REQUIRE(groups_.group_size(group) > 0,
               "insert into empty write group: fault-tolerance condition "
               "violated for " + group);

  PasoObject object;
  object.id = ObjectId{process, insert_seq_[process]++};
  object.fields = std::move(fields);

  std::uint64_t history_id = 0;
  bool has_history = false;
  if (history_ != nullptr) {
    history_id = history_->insert_issued(
        process, groups_.network().executor().now(), object);
    has_history = true;
  }

  StoreMsg msg{*cls, object};
  const std::size_t bytes = msg.wire_size();
  const obs::TraceId trace = trace_begin("insert");
  const sim::SimTime issued_at = groups_.network().executor().now();
  ++inflight_;
  obs::OpTracer::Scope scope(obs_.tracer, trace);
  batcher_.gcast(
      group, vsync::Payload{ServerMessage{std::move(msg)}, bytes}, "store",
      [this, history_id, has_history, trace, issued_at,
       done = std::move(done)](std::optional<std::any>) {
        record_return(history_id, has_history, std::nullopt);
        trace_finish(trace, "ok", issued_at);
        if (inflight_ > 0) --inflight_;
        if (done) done();
      });
  return object.id;
}

// ---------------------------------------------------------------------------
// read

std::vector<MachineId> PasoRuntime::read_group_of(ClassId cls) const {
  if (basic_support_) return basic_support_(cls);
  return {};
}

std::size_t PasoRuntime::sticky_start(ClassId cls,
                                      const std::vector<MachineId>& members,
                                      std::size_t window) {
  // Two-choice with stickiness: compare the anchored window against one
  // rotating probe window per read and move the anchor only when the probe
  // is measurably lighter. Load of a window is its most-loaded replica (the
  // max is what tail latency sees), read from the ledger's per-machine work
  // counters — the signal real servers would piggyback on responses.
  const net::CostLedger& ledger = groups_.network().ledger();
  auto window_load = [&](std::size_t start) {
    Cost load = 0;
    const std::size_t span = std::min(window, members.size());
    for (std::size_t i = 0; i < span; ++i) {
      load = std::max(load,
                      ledger.work_of(members[(start + i) % members.size()]));
    }
    return load;
  };
  std::size_t& anchor = sticky_anchor_[cls.value];
  anchor %= members.size();  // the view may have shrunk since the last read
  const std::size_t probe = read_rotation_[cls.value]++ % members.size();
  if (probe != anchor &&
      window_load(probe) <
          window_load(anchor) * (1.0 - config_.sticky_margin)) {
    anchor = probe;
  }
  return anchor;
}

void PasoRuntime::read(ProcessId process, SearchCriterion sc,
                       SearchCallback cb) {
  PASO_REQUIRE(groups_.is_up(self_), "read issued from a crashed machine");
  std::vector<ClassId> classes = schema_.candidate_classes(sc);
  std::uint64_t history_id = 0;
  bool has_history = false;
  if (history_ != nullptr) {
    history_id = history_->search_issued(process,
                                         groups_.network().executor().now(),
                                         semantics::OpKind::kRead, sc);
    has_history = true;
  }
  const obs::TraceId trace = trace_begin("read");
  const sim::SimTime issued_at = groups_.network().executor().now();
  ++inflight_;
  read_class_chain(process, std::move(sc), std::move(classes), 0,
                   [this, history_id, has_history, trace,
                    issued_at, cb = std::move(cb)](SearchResponse result) {
                     record_return(history_id, has_history, result);
                     trace_finish(trace, result ? "ok" : "fail", issued_at);
                     if (inflight_ > 0) --inflight_;
                     if (cb) cb(std::move(result));
                   },
                   trace);
}

void PasoRuntime::read_class_chain(ProcessId process, SearchCriterion sc,
                                   std::vector<ClassId> classes,
                                   std::size_t index, SearchCallback cb,
                                   obs::TraceId trace,
                                   std::size_t fanout_cap) {
  if (index >= classes.size()) {
    cb(std::nullopt);
    return;
  }
  const ClassId cls = classes[index];
  const GroupName group = group_of(cls);
  // Reader-population signal for placement-aware replication: every class
  // this read consults counts as reader interest from this machine.
  ++reads_issued_[cls.value];

  if (groups_.is_member(group, self_) && server_.supports(cls)) {
    // Local fast path (Section 4.3): msg-cost 0, Q(l) work on this server.
    SearchResponse result = server_.local_find(cls, sc);
    if (policy_) policy_->on_local_read(cls, /*served_locally=*/true, 0);
    if (result) {
      cb(std::move(result));
      return;
    }
    read_class_chain(process, std::move(sc), std::move(classes), index + 1,
                     std::move(cb), trace, fanout_cap);
    return;
  }

  // Remote path: gcast mem-read(sc, C) to the read group. An admission
  // fanout_cap (kDegrade) shrinks the read group below lambda+1 — a
  // degraded read trades fault coverage for load shed.
  std::size_t max_targets =
      config_.use_read_groups ? config_.lambda + 1 : SIZE_MAX;
  if (fanout_cap != 0) max_targets = std::min(max_targets, fanout_cap);
  std::vector<MachineId> preferred;
  if (config_.use_read_groups) {
    if (config_.rotate_read_groups) {
      // Load-balancing variant: take lambda+1 members of the current write
      // group starting at a per-class offset — blindly advanced every read,
      // or sticky two-choice driven by per-replica load counters.
      const std::vector<MachineId> members = groups_.view_of(group).members;
      if (!members.empty()) {
        const std::size_t start =
            config_.sticky_rotation
                ? sticky_start(cls, members, max_targets)
                : read_rotation_[cls.value]++ % members.size();
        for (std::size_t i = 0; i < members.size() && preferred.size() < max_targets; ++i) {
          preferred.push_back(members[(start + i) % members.size()]);
        }
      }
    } else {
      preferred = read_group_of(cls);
    }
  }
  const std::size_t target_estimate =
      std::min(max_targets, groups_.group_size(group));
  if (policy_) {
    policy_->on_local_read(cls, /*served_locally=*/false, target_estimate);
  }

  MemReadMsg msg{cls, sc};
  const std::size_t bytes = msg.wire_size();
  obs::OpTracer::Scope scope(obs_.tracer, trace);
  batcher_.gcast_to(
      group, vsync::Payload{ServerMessage{std::move(msg)}, bytes},
      "mem-read", std::move(preferred), max_targets,
      [this, process, sc = std::move(sc), classes = std::move(classes), index,
       trace, fanout_cap,
       cb = std::move(cb)](std::optional<std::any> response) mutable {
        SearchResponse result = unwrap_search(response);
        if (result) {
          cb(std::move(result));
          return;
        }
        read_class_chain(process, std::move(sc), std::move(classes),
                         index + 1, std::move(cb), trace, fanout_cap);
      });
}

// ---------------------------------------------------------------------------
// read&del

void PasoRuntime::read_del(ProcessId process, SearchCriterion sc,
                           SearchCallback cb) {
  PASO_REQUIRE(groups_.is_up(self_),
               "read&del issued from a crashed machine");
  std::vector<ClassId> classes = schema_.candidate_classes(sc);
  std::uint64_t history_id = 0;
  bool has_history = false;
  if (history_ != nullptr) {
    history_id = history_->search_issued(process,
                                         groups_.network().executor().now(),
                                         semantics::OpKind::kReadDel, sc);
    has_history = true;
  }
  const obs::TraceId trace = trace_begin("read_del");
  const sim::SimTime issued_at = groups_.network().executor().now();
  ++inflight_;
  read_del_class_chain(process, std::move(sc), std::move(classes), 0,
                       /*token=*/0,
                       [this, history_id, has_history, trace,
                        issued_at, cb = std::move(cb)](SearchResponse result) {
                         record_return(history_id, has_history, result);
                         trace_finish(trace, result ? "ok" : "fail",
                                      issued_at);
                         if (inflight_ > 0) --inflight_;
                         if (cb) cb(std::move(result));
                       },
                       trace);
}

void PasoRuntime::read_del_class_chain(ProcessId process, SearchCriterion sc,
                                       std::vector<ClassId> classes,
                                       std::size_t index, std::uint64_t token,
                                       SearchCallback cb, obs::TraceId trace) {
  if (index >= classes.size()) {
    cb(std::nullopt);
    return;
  }
  const ClassId cls = classes[index];
  // Every write-group member must apply the removal, so there is no local
  // shortcut and no read-group restriction (Section 4.3).
  RemoveMsg msg{cls, sc, token};
  const std::size_t bytes = msg.wire_size();
  obs::OpTracer::Scope scope(obs_.tracer, trace);
  batcher_.gcast(
      group_of(cls),
      vsync::Payload{ServerMessage{std::move(msg)}, bytes}, "remove",
      [this, process, sc = std::move(sc), classes = std::move(classes), index,
       token, trace,
       cb = std::move(cb)](std::optional<std::any> response) mutable {
        SearchResponse result = unwrap_search(response);
        if (result) {
          cb(std::move(result));
          return;
        }
        read_del_class_chain(process, std::move(sc), std::move(classes),
                             index + 1, token, std::move(cb), trace);
      });
}

// ---------------------------------------------------------------------------
// blocking variants

void PasoRuntime::read_blocking(ProcessId process, SearchCriterion sc,
                                SearchCallback cb, BlockingMode mode,
                                sim::SimTime deadline) {
  start_blocking(process, std::move(sc), std::move(cb),
                 semantics::OpKind::kRead, mode, deadline);
}

void PasoRuntime::read_del_blocking(ProcessId process, SearchCriterion sc,
                                    SearchCallback cb, BlockingMode mode,
                                    sim::SimTime deadline) {
  start_blocking(process, std::move(sc), std::move(cb),
                 semantics::OpKind::kReadDel, mode, deadline);
}

void PasoRuntime::start_blocking(ProcessId process, SearchCriterion sc,
                                 SearchCallback cb, semantics::OpKind kind,
                                 BlockingMode mode, sim::SimTime deadline) {
  PASO_REQUIRE(groups_.is_up(self_),
               "blocking operation issued from a crashed machine");
  BlockingOp op;
  op.id = next_blocking_id_++;
  op.process = process;
  op.kind = kind;
  op.criterion = std::move(sc);
  op.cb = std::move(cb);
  op.mode = mode;
  op.deadline = deadline;
  op.classes = schema_.candidate_classes(op.criterion);
  if (history_ != nullptr) {
    op.history_id = history_->search_issued(
        process, groups_.network().executor().now(), kind, op.criterion);
    op.has_history = true;
  }
  op.trace = trace_begin(kind == semantics::OpKind::kRead
                             ? "read_blocking"
                             : "read_del_blocking");
  op.issued_at = groups_.network().executor().now();
  const std::uint64_t op_id = op.id;
  blocking_.emplace(op_id, std::move(op));
  ++inflight_;
  if (mode == BlockingMode::kPoll) {
    blocking_poll(op_id);
  } else {
    place_markers(op_id);
  }
}

void PasoRuntime::blocking_poll(std::uint64_t op_id) {
  auto it = blocking_.find(op_id);
  if (it == blocking_.end()) return;
  BlockingOp& op = it->second;
  const sim::SimTime now = groups_.network().executor().now();
  if (now >= op.deadline) {
    finish_blocking(op_id, std::nullopt, /*timed_out=*/true);
    return;
  }
  auto retry = [this, op_id](SearchResponse result) {
    auto again = blocking_.find(op_id);
    if (again == blocking_.end()) return;
    if (result) {
      finish_blocking(op_id, std::move(result));
      return;
    }
    groups_.network().executor().schedule_after(
        config_.poll_interval, [this, op_id] { blocking_poll(op_id); });
  };
  if (op.kind == semantics::OpKind::kRead) {
    read_class_chain(op.process, op.criterion, op.classes, 0,
                     std::move(retry), op.trace);
  } else {
    read_del_class_chain(op.process, op.criterion, op.classes, 0,
                         /*token=*/0, std::move(retry), op.trace);
  }
}

void PasoRuntime::place_markers(std::uint64_t op_id) {
  auto it = blocking_.find(op_id);
  if (it == blocking_.end()) return;
  BlockingOp& op = it->second;
  const sim::SimTime now = groups_.network().executor().now();
  if (now >= op.deadline) {
    finish_blocking(op_id, std::nullopt, /*timed_out=*/true);
    return;
  }
  const sim::SimTime expires = now + config_.marker_ttl;
  obs::OpTracer::Scope scope(obs_.tracer, op.trace);
  for (const ClassId cls : op.classes) {
    PlaceMarkerMsg msg{cls, op.criterion, op_id, self_, expires};
    const std::size_t bytes = msg.wire_size();
    // The marker's installation response doubles as an immediate probe, so
    // an object already present is found without waiting for an insert.
    groups_.gcast(group_of(cls), self_,
                  vsync::Payload{ServerMessage{std::move(msg)}, bytes},
                  "place-marker",
                  [this, op_id](std::optional<std::any> response) {
                    SearchResponse result = unwrap_search(response);
                    if (result) blocking_candidate(op_id, *result);
                  });
  }
  // Hybrid scheme: markers expire; re-place (and thereby re-probe) while the
  // operation is still waiting.
  groups_.network().executor().schedule_after(
      config_.marker_ttl, [this, op_id] { place_markers(op_id); });
}

void PasoRuntime::blocking_candidate(std::uint64_t op_id,
                                     const PasoObject& object) {
  auto it = blocking_.find(op_id);
  if (it == blocking_.end()) return;  // already finished
  BlockingOp& op = it->second;
  if (op.kind == semantics::OpKind::kRead) {
    finish_blocking(op_id, object);
    return;
  }
  // Blocking read&del: the notification is only a hint — another process may
  // win the race. Claim through a regular (totally ordered) remove; on
  // failure, keep waiting for the next notification. The paper left marker-
  // based read&del as future work; this claim/retry realizes it on top of
  // the ordered remove.
  if (op.claiming) return;
  op.claiming = true;
  read_del_class_chain(op.process, op.criterion, op.classes, 0,
                       /*token=*/0,
                       [this, op_id](SearchResponse result) {
                         auto again = blocking_.find(op_id);
                         if (again == blocking_.end()) return;
                         if (result) {
                           finish_blocking(op_id, std::move(result));
                         } else {
                           again->second.claiming = false;
                         }
                       },
                       op.trace);
}

void PasoRuntime::cancel_markers(const BlockingOp& op) {
  obs::OpTracer::Scope scope(obs_.tracer, op.trace);
  for (const ClassId cls : op.classes) {
    CancelMarkerMsg msg{cls, op.id, self_};
    const std::size_t bytes = msg.wire_size();
    groups_.gcast(group_of(cls), self_,
                  vsync::Payload{ServerMessage{std::move(msg)}, bytes},
                  "cancel-marker");
  }
}

void PasoRuntime::finish_blocking(std::uint64_t op_id, SearchResponse result,
                                  bool timed_out) {
  auto it = blocking_.find(op_id);
  if (it == blocking_.end()) return;
  BlockingOp op = std::move(it->second);
  blocking_.erase(it);
  if (op.mode == BlockingMode::kMarker) cancel_markers(op);
  // A deadline expiry is not a definitive "fail": a probe's response — or,
  // worse, a claim's replicated removal — may still be in flight. Recording
  // a clean fail there would overclaim, so under `pessimistic_timeouts`
  // (and always when a claim is outstanding, where the removal may land
  // after this return) the op is abandoned instead: the record stays
  // pending and the checker applies crash-grade pessimism.
  const bool abandon =
      timed_out && !result && (config_.pessimistic_timeouts || op.claiming);
  if (abandon) {
    ++timeouts_;
    if (op.has_history && history_ != nullptr) {
      history_->op_abandoned(op.history_id,
                             groups_.network().executor().now());
    }
  } else {
    if (timed_out && !result) ++timeouts_;
    record_return(op.history_id, op.has_history, result);
  }
  if (timed_out && obs_.tracer != nullptr) {
    obs_.tracer->span(op.trace, obs::SpanKind::kDeadline, self_,
                      groups_.network().executor().now());
  }
  trace_finish(op.trace,
               result ? "ok" : (timed_out ? "timeout" : "fail"),
               op.issued_at);
  if (inflight_ > 0) --inflight_;
  if (op.cb) op.cb(std::move(result));
}

void PasoRuntime::on_marker_notification(std::uint64_t marker_id,
                                         const PasoObject& object) {
  blocking_candidate(marker_id, object);
}

// ---------------------------------------------------------------------------
// robust operations (crash-recovery hardening)

bool PasoRuntime::degraded(ClassId cls) const {
  // k = number of machines currently down; the fault-tolerance condition of
  // §4.1 requires |wg(C)| > λ−k operational members. (A machine still in
  // its initialization phase also counts faulty per §3.1, but it is not in
  // any view yet, so the operational count below already excludes it.)
  std::size_t down = 0;
  const std::size_t n = groups_.network().machine_count();
  for (std::size_t m = 0; m < n; ++m) {
    if (!groups_.is_up(MachineId{static_cast<std::uint32_t>(m)})) ++down;
  }
  std::size_t operational = 0;
  for (const MachineId m : groups_.view_of(group_of(cls)).members) {
    if (groups_.is_up(m)) ++operational;
  }
  return operational + down <= config_.lambda;
}

sim::SimTime PasoRuntime::resolve_deadline(sim::SimTime deadline) const {
  if (deadline != kNoDeadline) return deadline;
  if (config_.op_deadline == sim::kNever) return kNoDeadline;
  return groups_.network().executor().now() + config_.op_deadline;
}

std::uint64_t PasoRuntime::next_remove_token() {
  // Unique system-wide: machine id in the high bits, a local sequence that
  // survives crashes (like insert_seq_) below. Token 0 stays reserved for
  // "untracked".
  return ((static_cast<std::uint64_t>(self_.value) + 1) << 40) |
         next_remove_seq_++;
}

ObjectId PasoRuntime::insert_robust(ProcessId process, Tuple fields,
                                    ReportCallback report,
                                    sim::SimTime deadline) {
  PASO_REQUIRE(groups_.is_up(self_), "insert issued from a crashed machine");
  const auto cls = schema_.classify(fields);
  PASO_REQUIRE(cls.has_value(), "tuple matches no declared object class");

  // The identity is allocated exactly once; every retry re-sends the same
  // StoreMsg, so A2 (at-most-one insert per identity) holds by construction
  // and the servers' insert dedup makes the retries harmless.
  PasoObject object;
  object.id = ObjectId{process, insert_seq_[process]++};
  object.fields = std::move(fields);

  RobustOp op;
  op.classes = {*cls};
  op.store = StoreMsg{*cls, object};
  op.report = std::move(report);
  if (history_ != nullptr) {
    op.history_id = history_->insert_issued(
        process, groups_.network().executor().now(), object);
    op.has_history = true;
  }
  start_robust(process, semantics::OpKind::kInsert, std::move(op), deadline);
  return object.id;
}

void PasoRuntime::read_robust(ProcessId process, SearchCriterion sc,
                              ReportCallback report, sim::SimTime deadline) {
  PASO_REQUIRE(groups_.is_up(self_), "read issued from a crashed machine");
  RobustOp op;
  op.criterion = sc;
  op.classes = schema_.candidate_classes(sc);
  op.report = std::move(report);
  if (history_ != nullptr) {
    op.history_id =
        history_->search_issued(process, groups_.network().executor().now(),
                                semantics::OpKind::kRead, sc);
    op.has_history = true;
  }
  start_robust(process, semantics::OpKind::kRead, std::move(op), deadline);
}

void PasoRuntime::read_del_robust(ProcessId process, SearchCriterion sc,
                                  ReportCallback report,
                                  sim::SimTime deadline) {
  PASO_REQUIRE(groups_.is_up(self_),
               "read&del issued from a crashed machine");
  RobustOp op;
  op.criterion = sc;
  op.classes = schema_.candidate_classes(sc);
  op.remove_token = next_remove_token();
  op.report = std::move(report);
  if (history_ != nullptr) {
    op.history_id =
        history_->search_issued(process, groups_.network().executor().now(),
                                semantics::OpKind::kReadDel, sc);
    op.has_history = true;
  }
  start_robust(process, semantics::OpKind::kReadDel, std::move(op), deadline);
}

std::uint64_t PasoRuntime::start_robust(ProcessId process,
                                        semantics::OpKind kind, RobustOp op,
                                        sim::SimTime deadline) {
  op.id = next_robust_id_++;
  op.process = process;
  op.kind = kind;
  op.deadline = resolve_deadline(deadline);
  op.backoff = config_.retry_backoff;
  op.trace = trace_begin(kind == semantics::OpKind::kInsert ? "insert_robust"
                         : kind == semantics::OpKind::kRead
                             ? "read_robust"
                             : "read_del_robust");
  op.issued_at = groups_.network().executor().now();
  const std::uint64_t op_id = op.id;

  // Admission gate (SEDA-style): bound the robust stage's concurrency at
  // the client edge, before anything reaches the network.
  if (config_.admission != AdmissionMode::kOff &&
      admitted_ >= config_.admission_limit) {
    if (config_.admission == AdmissionMode::kQueue &&
        admission_queue_.size() < config_.admission_queue_limit) {
      // Park in the bounded FIFO; robust_finish drains it as ops complete.
      // A parked op still honors its deadline — the only timer it arms.
      op.parked = true;
      robust_.emplace(op_id, std::move(op));
      ++inflight_;
      admission_queue_.push_back(op_id);
      ++admission_parked_;
      if (obs_.metrics != nullptr) {
        obs_.metrics->counter("runtime.admission.parked", self_).inc();
      }
      RobustOp& parked = robust_.at(op_id);
      if (parked.deadline != kNoDeadline) {
        parked.timer = groups_.network().executor().schedule_at(
            parked.deadline, [this, op_id] { robust_timer_fired(op_id); });
        parked.timer_armed = true;
      }
      return op_id;
    }
    if (config_.admission == AdmissionMode::kDegrade &&
        kind == semantics::OpKind::kRead) {
      // Reads can shrink their fan-out and proceed; updates cannot (every
      // write-group member must apply them), so they reject below.
      op.fanout_cap = degraded_fanout();
    } else {
      // kReject, a full kQueue parking lot, or a non-read under kDegrade:
      // fail fast with the typed Overloaded outcome. Nothing was issued,
      // but retry/backoff upstream treats it like any refused attempt.
      ++admission_rejections_;
      if (obs_.metrics != nullptr) {
        obs_.metrics->counter("runtime.admission.rejected", self_).inc();
      }
      robust_.emplace(op_id, std::move(op));
      ++inflight_;
      robust_finish(op_id, OpStatus::kOverloaded, std::nullopt);
      return op_id;
    }
  }

  op.admitted = true;
  ++admitted_;
  robust_.emplace(op_id, std::move(op));
  ++inflight_;
  robust_attempt(op_id);
  return op_id;
}

std::size_t PasoRuntime::degraded_fanout() const {
  // λ−k surviving-read semantics (§4.1): with k machines down, a read group
  // of λ+1−k still intersects every write group that satisfies the
  // fault-tolerance condition; shedding further is a correctness gamble the
  // caller opted into, so never go below one target.
  std::size_t down = 0;
  const std::size_t n = groups_.network().machine_count();
  for (std::size_t m = 0; m < n; ++m) {
    if (!groups_.is_up(MachineId{static_cast<std::uint32_t>(m)})) ++down;
  }
  const std::size_t cap = config_.lambda > down ? config_.lambda - down : 0;
  return std::max<std::size_t>(1, cap);
}

void PasoRuntime::admission_drain() {
  exec::Executor& sim = groups_.network().executor();
  while (admitted_ < config_.admission_limit && !admission_queue_.empty()) {
    const std::uint64_t op_id = admission_queue_.front();
    admission_queue_.pop_front();
    auto it = robust_.find(op_id);
    if (it == robust_.end()) continue;
    RobustOp& op = it->second;
    op.parked = false;
    op.admitted = true;
    ++admitted_;
    // Decoupled from the finishing op's call stack, like the view-change
    // reroute: the attempt issues from a fresh event. (robust_attempt
    // re-arms the timer, replacing the parked deadline-only timer.)
    sim.schedule_after(0, [this, op_id] { robust_attempt(op_id); });
  }
}

void PasoRuntime::robust_attempt(std::uint64_t op_id) {
  auto it = robust_.find(op_id);
  if (it == robust_.end()) return;
  RobustOp& op = it->second;

  // Graceful degradation at the λ−k boundary: surface an explicit error
  // instead of issuing an update that could be lost (or hanging on a group
  // that cannot answer).
  for (const ClassId cls : op.classes) {
    if (degraded(cls)) {
      ++degraded_rejections_;
      robust_finish(op_id, OpStatus::kDegraded, std::nullopt);
      return;
    }
  }

  ++op.attempts;
  switch (op.kind) {
    case semantics::OpKind::kInsert: {
      StoreMsg msg = *op.store;
      const GroupName group = group_of(msg.cls);
      const std::size_t bytes = msg.wire_size();
      // The deadline caps how long the batcher may hold the op: a retry
      // issued near the deadline dispatches immediately instead of waiting
      // out the coalescing window.
      obs::OpTracer::Scope scope(obs_.tracer, op.trace);
      batcher_.gcast(group,
                     vsync::Payload{ServerMessage{std::move(msg)}, bytes},
                     "store", [this, op_id](std::optional<std::any> response) {
                       if (!robust_.contains(op_id)) return;  // superseded
                       if (response.has_value()) {
                         robust_finish(op_id, OpStatus::kOk, std::nullopt);
                       }
                       // nullopt = the group emptied under us: stay pending,
                       // the timer retries or times out.
                     },
                     /*latest_dispatch=*/op.deadline);
      break;
    }
    case semantics::OpKind::kRead:
      read_class_chain(op.process, op.criterion, op.classes, 0,
                       [this, op_id](SearchResponse result) {
                         if (!robust_.contains(op_id)) return;
                         robust_finish(
                             op_id, result ? OpStatus::kOk : OpStatus::kFail,
                             std::move(result));
                       },
                       op.trace, op.fanout_cap);
      break;
    case semantics::OpKind::kReadDel:
      read_del_class_chain(op.process, op.criterion, op.classes, 0,
                           op.remove_token,
                           [this, op_id](SearchResponse result) {
                             if (!robust_.contains(op_id)) return;
                             robust_finish(
                                 op_id,
                                 result ? OpStatus::kOk : OpStatus::kFail,
                                 std::move(result));
                           },
                           op.trace);
      break;
  }
  // The attempt may have finished synchronously (local fast path); arming is
  // a no-op then.
  robust_arm_timer(op_id);
}

void PasoRuntime::robust_arm_timer(std::uint64_t op_id) {
  auto it = robust_.find(op_id);
  if (it == robust_.end()) return;
  RobustOp& op = it->second;
  exec::Executor& sim = groups_.network().executor();
  if (op.timer_armed) {
    sim.cancel(op.timer);
    op.timer_armed = false;
  }
  sim::SimTime next = op.deadline;
  const bool may_retry =
      op.backoff != sim::kNever &&
      (config_.max_attempts == 0 || op.attempts < config_.max_attempts);
  if (may_retry) next = std::min(next, sim.now() + op.backoff);
  if (next == sim::kNever) return;  // no deadline, no retries
  op.timer = sim.schedule_at(std::max(next, sim.now()),
                             [this, op_id] { robust_timer_fired(op_id); });
  op.timer_armed = true;
}

void PasoRuntime::robust_timer_fired(std::uint64_t op_id) {
  auto it = robust_.find(op_id);
  if (it == robust_.end()) return;
  RobustOp& op = it->second;
  op.timer_armed = false;
  const sim::SimTime now = groups_.network().executor().now();
  if (now >= op.deadline) {
    robust_finish(op_id, OpStatus::kTimeout, std::nullopt);
    return;
  }
  // A parked op arms only its deadline timer; it never retries while the
  // admission queue holds it.
  if (op.parked) return;
  if (config_.max_attempts != 0 && op.attempts >= config_.max_attempts) {
    robust_arm_timer(op_id);  // retry budget spent: wait out the deadline
    return;
  }
  ++retries_;
  if (obs_.metrics != nullptr) {
    obs_.metrics->counter("runtime.retries", self_).inc();
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->span(op.trace, obs::SpanKind::kRetry, self_, now, "backoff",
                      static_cast<double>(op.attempts));
  }
  op.backoff *= config_.retry_backoff_factor;
  robust_attempt(op_id);
}

void PasoRuntime::robust_finish(std::uint64_t op_id, OpStatus status,
                                SearchResponse object) {
  auto it = robust_.find(op_id);
  if (it == robust_.end()) return;
  RobustOp op = std::move(it->second);
  robust_.erase(it);
  exec::Executor& sim = groups_.network().executor();
  if (op.timer_armed) sim.cancel(op.timer);
  if (op.parked) {
    // Finished while waiting (deadline passed, or a crash sweep): leave no
    // dangling id in the parking FIFO.
    const auto queued = std::find(admission_queue_.begin(),
                                  admission_queue_.end(), op.id);
    if (queued != admission_queue_.end()) admission_queue_.erase(queued);
  }
  switch (status) {
    case OpStatus::kOk:
      record_return(op.history_id, op.has_history, object);
      break;
    case OpStatus::kFail:
      record_return(op.history_id, op.has_history, std::nullopt);
      break;
    case OpStatus::kTimeout:
    case OpStatus::kDegraded:
    case OpStatus::kOverloaded:
      // The op's replicated effect may or may not have been applied (a
      // retry could still be in flight); leave the record pending but
      // abandoned, which the checker treats with crash-grade pessimism.
      // (An overloaded rejection issued nothing, but an insert's identity
      // was allocated — abandoned keeps the accounting uniform.)
      if (status == OpStatus::kTimeout) ++timeouts_;
      if (op.has_history && history_ != nullptr) {
        history_->op_abandoned(op.history_id, sim.now());
      }
      break;
  }
  if (status == OpStatus::kTimeout && obs_.tracer != nullptr) {
    obs_.tracer->span(op.trace, obs::SpanKind::kDeadline, self_, sim.now());
  }
  trace_finish(op.trace, op_status_name(status), op.issued_at);
  if (inflight_ > 0) --inflight_;
  if (op.admitted) {
    if (admitted_ > 0) --admitted_;
    admission_drain();
  }
  if (op.report) {
    OpReport report;
    report.status = status;
    report.object = status == OpStatus::kOk ? std::move(object) : std::nullopt;
    report.attempts = op.attempts;
    op.report(std::move(report));
  }
}

void PasoRuntime::on_group_view_change(const GroupName& group,
                                       const vsync::View& /*view*/) {
  if (!groups_.is_up(self_)) return;
  if (robust_.empty()) return;
  // A membership change — typically a completed state transfer after a
  // recovery, or an expulsion after a crash — is fresh routing information:
  // ops orphaned by the previous view retry promptly instead of waiting out
  // their exponential backoff.
  std::vector<std::uint64_t> rerouted;
  for (const auto& [op_id, op] : robust_) {
    if (op.backoff == sim::kNever) continue;  // retries disabled
    for (const ClassId cls : op.classes) {
      if (group_of(cls) == group) {
        rerouted.push_back(op_id);
        break;
      }
    }
  }
  exec::Executor& sim = groups_.network().executor();
  for (const std::uint64_t op_id : rerouted) {
    auto it = robust_.find(op_id);
    if (it == robust_.end()) continue;
    RobustOp& op = it->second;
    if (obs_.tracer != nullptr) {
      obs_.tracer->span(op.trace, obs::SpanKind::kReroute, self_, sim.now(),
                        group);
    }
    op.backoff = config_.retry_backoff;
    if (op.timer_armed) {
      sim.cancel(op.timer);
      op.timer_armed = false;
    }
    // Decoupled from the view-installation call stack: the retry gcast is
    // enqueued from a fresh event.
    sim.schedule_after(0, [this, op_id] { robust_timer_fired(op_id); });
  }
}

// ---------------------------------------------------------------------------
// GroupControl

void PasoRuntime::request_join(ClassId cls) {
  request_join(cls, {});
}

void PasoRuntime::request_join(ClassId cls, std::function<void(bool)> done) {
  if (is_member(cls) || join_pending_.contains(cls.value)) {
    if (done) done(false);
    return;
  }
  join_pending_.insert(cls.value);
  groups_.g_join(group_of(cls), self_,
                 [this, cls, done = std::move(done)](bool ok) {
                   join_pending_.erase(cls.value);
                   if (done) done(ok);
                 });
}

void PasoRuntime::request_leave(ClassId cls) {
  if (!is_member(cls) || leave_pending_.contains(cls.value)) return;
  leave_pending_.insert(cls.value);
  groups_.g_leave(group_of(cls), self_,
                  [this, cls](bool) { leave_pending_.erase(cls.value); });
}

bool PasoRuntime::is_member(ClassId cls) const {
  return groups_.is_member(schema_.group_name(cls), self_);
}

bool PasoRuntime::is_basic_support(ClassId cls) const {
  if (!basic_support_) return false;
  const std::vector<MachineId> support = basic_support_(cls);
  return std::find(support.begin(), support.end(), self_) != support.end();
}

std::size_t PasoRuntime::live_count(ClassId cls) const {
  return server_.live_count(cls);
}

void PasoRuntime::on_machine_crash() {
  // Queued-but-undispatched batched ops die with the machine, like every
  // other piece of in-flight client state.
  batcher_.clear();
  blocking_.clear();
  exec::Executor& sim = groups_.network().executor();
  for (auto& [op_id, op] : robust_) {
    if (op.timer_armed) sim.cancel(op.timer);
  }
  robust_.clear();
  admission_queue_.clear();
  admitted_ = 0;
  join_pending_.clear();
  leave_pending_.clear();
  sticky_anchor_.clear();
  reads_issued_.clear();
  inflight_ = 0;
  ++crash_epoch_;
  if (policy_) policy_->on_machine_reset();
}

}  // namespace paso
