// Search criteria (Section 2): predicates over objects used as the argument
// of read and read&del.
//
// The paper's PASO model deliberately permits *general* search criteria —
// more general than the "exact type signature + per-field match" templates of
// operational Linda. We support per-field exact matches, typed wildcards,
// untyped wildcards, numeric ranges and text prefixes; this covers dictionary
// queries, range queries and pattern matching, the three query families
// Section 5 names when discussing local data structures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "paso/object.hpp"
#include "paso/value.hpp"

namespace paso {

/// Matches any value of any type.
struct AnyField {
  friend bool operator==(const AnyField&, const AnyField&) = default;
};

/// Matches any value of one type (a Linda "formal").
struct TypedAny {
  FieldType type;
  friend bool operator==(const TypedAny&, const TypedAny&) = default;
};

/// Matches exactly one value (a Linda "actual").
struct Exact {
  Value value;
  friend bool operator==(const Exact&, const Exact&) = default;
};

/// Matches integers in [lo, hi].
struct IntRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  friend bool operator==(const IntRange&, const IntRange&) = default;
};

/// Matches reals in [lo, hi].
struct RealRange {
  double lo = 0;
  double hi = 0;
  friend bool operator==(const RealRange&, const RealRange&) = default;
};

/// Matches text starting with `prefix`.
struct TextPrefix {
  std::string prefix;
  friend bool operator==(const TextPrefix&, const TextPrefix&) = default;
};

/// Matches any one of an explicit value set (an IN-list). Because the set
/// is explicit, a OneOf on a class's key field narrows the sc-list to the
/// union of the values' partitions rather than fanning out to all of them.
struct OneOf {
  std::vector<Value> values;
  friend bool operator==(const OneOf&, const OneOf&) = default;
};

/// One end of a Range: the bound value and whether it is excluded.
struct Bound {
  Value value;
  bool exclusive = false;
  friend bool operator==(const Bound&, const Bound&) = default;
};

/// General ordered-field range with optional, independently open or closed
/// bounds — the typed IntRange/RealRange kept above are the closed special
/// cases. A value matches when it carries the bounds' type and lies between
/// them; a Range whose two bounds disagree on type matches nothing, and a
/// Range with no bounds matches any value (an untyped wildcard).
struct Range {
  std::optional<Bound> lo;
  std::optional<Bound> hi;
  friend bool operator==(const Range&, const Range&) = default;
};

using FieldPattern = std::variant<AnyField, TypedAny, Exact, IntRange,
                                  RealRange, TextPrefix, OneOf, Range>;

bool pattern_matches(const FieldPattern& pattern, const Value& value);

/// True if a value of `type` could ever satisfy `pattern`.
bool pattern_admits_type(const FieldPattern& pattern, FieldType type);

/// Declared wire size of a pattern (for |sc| in the cost model).
std::size_t pattern_wire_size(const FieldPattern& pattern);

// --- ranked reads -----------------------------------------------------------

/// Scoring hook for ranked (TopK) reads: maps a field value to a score.
using ScoreFn = double (*)(const Value&);

/// A registered scoring function plus the field types over which it is
/// *strictly increasing* in the value order. Index walks may serve a ranked
/// read only over those types: strict monotonicity makes score order equal
/// key order, so a sorted-index walk enumerates candidates in rank order.
struct ScoreHook {
  ScoreFn fn = nullptr;
  unsigned monotone_mask = 0;  // bit (1 << FieldType) set when strict
};

/// Hook id 0: the natural order. Int and real score as themselves, bool as
/// 0/1 (all strictly increasing; ints above 2^53 may collide in the double
/// score), text scores 0 — ranked text reads degrade to age order and are
/// never index-accelerated.
inline constexpr std::uint8_t kNaturalScore = 0;

/// Registers a hook and returns its id. Ids are process-wide; the wire
/// format ships only the id, so every machine must register the same hooks
/// in the same order (like the schema itself).
std::uint8_t register_score_hook(ScoreHook hook);
const ScoreHook& score_hook(std::uint8_t id);
double score_value(const Value& value, std::uint8_t hook_id);
bool score_monotone_for(std::uint8_t hook_id, FieldType type);

/// Ranked-read selector: restrict the criterion's matches to the k-th best
/// (1-based) under the scoring hook applied to `field`, ties broken oldest
/// first. Descending picks the k-th largest score, ascending the smallest.
struct TopK {
  std::size_t field = 0;
  std::uint32_t k = 1;
  bool descending = true;
  std::uint8_t score_fn = kNaturalScore;
  friend bool operator==(const TopK&, const TopK&) = default;
};

/// A search criterion: a tuple of field patterns. An object matches when the
/// arity agrees and every field satisfies its pattern. An optional TopK
/// selector turns the oldest-match read into a ranked read: among all
/// matches, the k-th in score order is returned. Matching itself (and thus
/// marker wakeup) ignores the selector — rank is a selection policy over
/// matches, not a per-object predicate.
struct SearchCriterion {
  std::vector<FieldPattern> fields;
  std::optional<TopK> top_k;

  bool matches(const PasoObject& object) const;
  bool matches(const Tuple& tuple) const;

  /// True when the ranked selector can ever pick anything: the rank field
  /// exists at this arity and k >= 1. Stores answer invalid selectors with
  /// "no match".
  bool ranked_valid() const {
    return top_k && top_k->field < fields.size() && top_k->k >= 1;
  }

  /// |sc| for the cost model.
  std::size_t wire_size() const;

  std::string to_string() const;

  friend bool operator==(const SearchCriterion&, const SearchCriterion&) =
      default;
};

/// Convenience builders so call sites read like Linda templates:
///   criterion(Exact{Value{std::int64_t{7}}}, AnyField{})
template <typename... Patterns>
SearchCriterion criterion(Patterns&&... patterns) {
  SearchCriterion sc;
  (sc.fields.emplace_back(std::forward<Patterns>(patterns)), ...);
  return sc;
}

/// Exact-match criterion for a whole tuple.
SearchCriterion exact_criterion(const Tuple& tuple);

/// Builder shorthands for the common Range shapes.
Range range_at_least(Value lo, bool exclusive = false);
Range range_at_most(Value hi, bool exclusive = false);
Range range_between(Value lo, Value hi, bool lo_exclusive = false,
                    bool hi_exclusive = false);

/// Attaches a ranked selector to a criterion (fluent form for call sites).
SearchCriterion ranked(SearchCriterion sc, TopK top_k);

}  // namespace paso
