// Search criteria (Section 2): predicates over objects used as the argument
// of read and read&del.
//
// The paper's PASO model deliberately permits *general* search criteria —
// more general than the "exact type signature + per-field match" templates of
// operational Linda. We support per-field exact matches, typed wildcards,
// untyped wildcards, numeric ranges and text prefixes; this covers dictionary
// queries, range queries and pattern matching, the three query families
// Section 5 names when discussing local data structures.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "paso/object.hpp"
#include "paso/value.hpp"

namespace paso {

/// Matches any value of any type.
struct AnyField {
  friend bool operator==(const AnyField&, const AnyField&) = default;
};

/// Matches any value of one type (a Linda "formal").
struct TypedAny {
  FieldType type;
  friend bool operator==(const TypedAny&, const TypedAny&) = default;
};

/// Matches exactly one value (a Linda "actual").
struct Exact {
  Value value;
  friend bool operator==(const Exact&, const Exact&) = default;
};

/// Matches integers in [lo, hi].
struct IntRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  friend bool operator==(const IntRange&, const IntRange&) = default;
};

/// Matches reals in [lo, hi].
struct RealRange {
  double lo = 0;
  double hi = 0;
  friend bool operator==(const RealRange&, const RealRange&) = default;
};

/// Matches text starting with `prefix`.
struct TextPrefix {
  std::string prefix;
  friend bool operator==(const TextPrefix&, const TextPrefix&) = default;
};

/// Matches any one of an explicit value set (an IN-list). Because the set
/// is explicit, a OneOf on a class's key field narrows the sc-list to the
/// union of the values' partitions rather than fanning out to all of them.
struct OneOf {
  std::vector<Value> values;
  friend bool operator==(const OneOf&, const OneOf&) = default;
};

using FieldPattern = std::variant<AnyField, TypedAny, Exact, IntRange,
                                  RealRange, TextPrefix, OneOf>;

bool pattern_matches(const FieldPattern& pattern, const Value& value);

/// True if a value of `type` could ever satisfy `pattern`.
bool pattern_admits_type(const FieldPattern& pattern, FieldType type);

/// Declared wire size of a pattern (for |sc| in the cost model).
std::size_t pattern_wire_size(const FieldPattern& pattern);

/// A search criterion: a tuple of field patterns. An object matches when the
/// arity agrees and every field satisfies its pattern.
struct SearchCriterion {
  std::vector<FieldPattern> fields;

  bool matches(const PasoObject& object) const;
  bool matches(const Tuple& tuple) const;

  /// |sc| for the cost model.
  std::size_t wire_size() const;

  std::string to_string() const;

  friend bool operator==(const SearchCriterion&, const SearchCriterion&) =
      default;
};

/// Convenience builders so call sites read like Linda templates:
///   criterion(Exact{Value{std::int64_t{7}}}, AnyField{})
template <typename... Patterns>
SearchCriterion criterion(Patterns&&... patterns) {
  SearchCriterion sc;
  (sc.fields.emplace_back(std::forward<Patterns>(patterns)), ...);
  return sc;
}

/// Exact-match criterion for a whole tuple.
SearchCriterion exact_criterion(const Tuple& tuple);

}  // namespace paso
