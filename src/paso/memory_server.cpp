#include "paso/memory_server.hpp"

#include <algorithm>
#include <any>
#include <utility>

#include "common/logging.hpp"

namespace paso {

MemoryServer::MemoryServer(MachineId self, const Schema& schema,
                           ClassStoreFactory factory,
                           net::BusNetwork& network)
    : self_(self),
      schema_(schema),
      factory_(std::move(factory)),
      network_(network) {
  PASO_REQUIRE(factory_ != nullptr, "store factory required");
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    group_to_class_.emplace(schema_.group_name(ClassId{c}), ClassId{c});
  }
}

std::optional<ClassId> MemoryServer::class_of_group(
    const GroupName& group) const {
  auto it = group_to_class_.find(group);
  if (it == group_to_class_.end()) return std::nullopt;
  return it->second;
}

MemoryServer::ClassMetrics* MemoryServer::metrics_of(ClassId cls) {
  if (obs_.metrics == nullptr) return nullptr;
  auto it = class_metrics_.find(cls.value);
  if (it == class_metrics_.end()) {
    const std::string prefix = "server.c" + std::to_string(cls.value) + ".";
    ClassMetrics m;
    m.stores = &obs_.metrics->counter(prefix + "stores", self_);
    m.reads = &obs_.metrics->counter(prefix + "reads", self_);
    m.removes = &obs_.metrics->counter(prefix + "removes", self_);
    m.probes = &obs_.metrics->counter(prefix + "probes", self_);
    m.markers = &obs_.metrics->gauge(prefix + "markers", self_);
    it = class_metrics_.emplace(cls.value, m).first;
  }
  return &it->second;
}

MemoryServer::ClassState& MemoryServer::state_of(ClassId cls) {
  auto it = classes_.find(cls.value);
  if (it == classes_.end()) {
    ClassState state;
    state.store = factory_(cls);
    PASO_REQUIRE(state.store != nullptr, "store factory returned null");
    it = classes_.emplace(cls.value, std::move(state)).first;
  }
  return it->second;
}

vsync::GcastResult MemoryServer::handle_gcast(const GroupName& group,
                                              const vsync::Payload& payload) {
  const auto cls = class_of_group(group);
  PASO_REQUIRE(cls.has_value(), "gcast on unknown group");
  const auto* message = std::any_cast<ServerMessage>(&payload.body);
  PASO_REQUIRE(message != nullptr, "unexpected gcast body");

  vsync::GcastResult result;
  ClassState& state = state_of(*cls);
  ClassMetrics* metrics = metrics_of(*cls);
  const std::uint64_t probes_before =
      metrics != nullptr ? state.store->match_probes() : 0;

  if (const auto* store_msg = std::get_if<StoreMsg>(message)) {
    if (metrics != nullptr) metrics->stores->inc();
    apply_store(*cls, state, *store_msg, result.processing);
    // store(o) expects no response payload: the gathered response is empty.
    result.response = std::any{};
    result.response_bytes = 0;
  } else if (const auto* read_msg = std::get_if<MemReadMsg>(message)) {
    if (metrics != nullptr) metrics->reads->inc();
    SearchResponse response = apply_read(state, *read_msg, result.processing);
    result.response_bytes = response_wire_size(response);
    result.response = std::move(response);
  } else if (const auto* remove_msg = std::get_if<RemoveMsg>(message)) {
    if (metrics != nullptr) metrics->removes->inc();
    SearchResponse response =
        apply_remove(*cls, state, *remove_msg, result.processing);
    result.response_bytes = response_wire_size(response);
    result.response = std::move(response);
  } else if (const auto* batch_msg = std::get_if<BatchMsg>(message)) {
    // A batch is its member operations applied in order, sharing one gcast.
    // Each op runs through the same apply helper a lone message would, so
    // dedup, token replay and marker firing are identical per op.
    BatchResponse response;
    response.slots.reserve(batch_msg->ops.size());
    for (const BatchableOp& op : batch_msg->ops) {
      std::visit(
          [&](const auto& sub) {
            using S = std::decay_t<decltype(sub)>;
            if constexpr (std::is_same_v<S, StoreMsg>) {
              if (metrics != nullptr) metrics->stores->inc();
              apply_store(*cls, state, sub, result.processing);
              response.slots.emplace_back(std::nullopt);
            } else if constexpr (std::is_same_v<S, MemReadMsg>) {
              if (metrics != nullptr) metrics->reads->inc();
              response.slots.push_back(
                  apply_read(state, sub, result.processing));
            } else {
              static_assert(std::is_same_v<S, RemoveMsg>);
              if (metrics != nullptr) metrics->removes->inc();
              response.slots.push_back(
                  apply_remove(*cls, state, sub, result.processing));
            }
          },
          op);
    }
    result.response_bytes = response.wire_size();
    result.response = std::move(response);
  } else if (const auto* marker_msg = std::get_if<PlaceMarkerMsg>(message)) {
    // Install the marker, then answer the embedded immediate probe: the
    // response doubles as a mem-read so the issuer learns about an object
    // that was already present (no insert will re-announce it).
    sweep_expired_markers(state);
    state.markers.push_back(Marker{marker_msg->marker_id, marker_msg->owner,
                                   marker_msg->criterion,
                                   marker_msg->expires_at});
    state.marker_index_dirty = true;
    schedule_marker_sweep(*cls, marker_msg->expires_at);
    result.processing = state.store->query_cost();
    SearchResponse response = state.store->find(marker_msg->criterion);
    result.response_bytes = response_wire_size(response);
    result.response = std::move(response);
  } else if (const auto* cancel_msg = std::get_if<CancelMarkerMsg>(message)) {
    const std::size_t before = state.markers.size();
    std::erase_if(state.markers, [cancel_msg](const Marker& m) {
      return m.marker_id == cancel_msg->marker_id &&
             m.owner == cancel_msg->owner;
    });
    if (state.markers.size() != before) state.marker_index_dirty = true;
    sweep_expired_markers(state);
    result.processing = 0;
    result.response = std::any{};
    result.response_bytes = 0;
  }
  if (metrics != nullptr) {
    metrics->probes->inc(state.store->match_probes() - probes_before);
    metrics->markers->set(static_cast<double>(state.markers.size()));
  }
  return result;
}

void MemoryServer::apply_store(ClassId cls, ClassState& state,
                               const StoreMsg& msg, Cost& processing) {
  if (state.applied_inserts.contains(msg.object.id)) {
    // Duplicate delivery of a store already applied (and possibly since
    // removed): refuse silently so retransmission cannot violate A2.
    ++duplicates_refused_;
    return;
  }
  state.applied_inserts.insert(msg.object.id);
  processing += state.store->insert_cost();
  state.store->store(msg.object, state.next_age++);
  fire_markers(state, msg.object);
  if (update_hook_) update_hook_(cls, /*is_store=*/true, /*applied=*/true);
}

SearchResponse MemoryServer::apply_read(ClassState& state,
                                        const MemReadMsg& msg,
                                        Cost& processing) {
  processing += state.store->query_cost();
  return state.store->find(msg.criterion);
}

SearchResponse MemoryServer::apply_remove(ClassId cls, ClassState& state,
                                          const RemoveMsg& msg,
                                          Cost& processing) {
  if (msg.token != 0) {
    auto cached = state.remove_cache.find(msg.token);
    if (cached != state.remove_cache.end()) {
      // Replay of a remove this replica already decided: return the
      // original decision without touching the store (exactly-once).
      ++duplicates_refused_;
      return cached->second;
    }
  }
  SearchResponse response = state.store->remove(msg.criterion);
  processing += response.has_value() ? state.store->remove_cost()
                                     : state.store->query_cost();
  if (update_hook_) {
    update_hook_(cls, /*is_store=*/false, /*applied=*/response.has_value());
  }
  if (msg.token != 0) {
    state.remove_cache.emplace(msg.token, response);
    state.remove_cache_order.push_back(msg.token);
    while (state.remove_cache_order.size() > kRemoveCacheCap) {
      state.remove_cache.erase(state.remove_cache_order.front());
      state.remove_cache_order.pop_front();
    }
  }
  return response;
}

void MemoryServer::rebuild_marker_index(ClassState& state) {
  state.marker_buckets.clear();
  state.marker_catch_all.clear();
  for (std::size_t i = 0; i < state.markers.size(); ++i) {
    const SearchCriterion& sc = state.markers[i].criterion;
    // Bucket by the first Exact-constrained field: an object can only match
    // this marker if it carries exactly that value there. Markers without an
    // Exact pattern stay in the catch-all and are tested on every insert.
    const Exact* exact = nullptr;
    std::size_t field = 0;
    for (std::size_t f = 0; f < sc.fields.size(); ++f) {
      if ((exact = std::get_if<Exact>(&sc.fields[f])) != nullptr) {
        field = f;
        break;
      }
    }
    if (exact != nullptr) {
      state.marker_buckets[field][value_hash(exact->value)].push_back(i);
    } else {
      state.marker_catch_all.push_back(i);
    }
  }
  state.marker_index_dirty = false;
}

void MemoryServer::fire_markers(ClassState& state, const PasoObject& object) {
  if (state.markers.empty()) return;
  if (state.marker_index_dirty) rebuild_marker_index(state);
  // Candidates: catch-all markers plus, per bucketed field, the markers
  // demanding exactly this object's value there.
  std::vector<std::size_t> candidates = state.marker_catch_all;
  for (const auto& [field, buckets] : state.marker_buckets) {
    if (field >= object.fields.size()) continue;
    auto it = buckets.find(value_hash(object.fields[field]));
    if (it == buckets.end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  // Fire in placement order — the order the old linear scan used — so
  // replicas and tests observe identical notification sequences.
  std::sort(candidates.begin(), candidates.end());
  const sim::SimTime now = network_.simulator().now();
  for (const std::size_t i : candidates) {
    const Marker& marker = state.markers[i];
    // Expired markers never fire; they are erased by the sweeps on the
    // marker-management and state-capture paths, not here, so the insert
    // hot path stays index-sized.
    if (marker.expires_at < now) continue;
    ++marker_probes_;
    if (!marker.criterion.matches(object)) continue;
    if (marker_hook_) marker_hook_(marker.owner, marker.marker_id, object);
  }
}

void MemoryServer::sweep_expired_markers(ClassState& state) {
  if (state.markers.empty()) return;
  const sim::SimTime now = network_.simulator().now();
  const std::size_t before = state.markers.size();
  std::erase_if(state.markers,
                [now](const Marker& m) { return m.expires_at < now; });
  if (state.markers.size() != before) state.marker_index_dirty = true;
}

void MemoryServer::schedule_marker_sweep(ClassId cls, sim::SimTime expires_at) {
  if (expires_at >= sim::kNever) return;  // never-expiring marker
  sim::Simulator& simulator = network_.simulator();
  // The sweep predicate is strict (`expires_at < now`), so fire just past
  // the expiry. The class is looked up by value at fire time: it may have
  // been erased by a crash or leave in between, which makes the timer moot.
  const sim::SimTime at = std::max(simulator.now(), expires_at + 1);
  simulator.schedule_at(at, [this, cls] {
    auto it = classes_.find(cls.value);
    if (it == classes_.end()) return;
    sweep_expired_markers(it->second);
    if (ClassMetrics* metrics = metrics_of(cls); metrics != nullptr) {
      metrics->markers->set(static_cast<double>(it->second.markers.size()));
    }
  });
}

vsync::StateBlob MemoryServer::capture_state(const GroupName& group) {
  const auto cls = class_of_group(group);
  PASO_REQUIRE(cls.has_value(), "capture on unknown group");
  ClassState& state = state_of(*cls);
  // Don't donate dead markers: the blob (and its byte cost) carries only
  // live ones.
  sweep_expired_markers(state);
  auto snapshot = std::make_shared<ClassSnapshot>();
  snapshot->objects = state.store->snapshot();
  snapshot->next_age = state.next_age;
  snapshot->markers = state.markers;
  snapshot->applied_inserts = state.applied_inserts;
  snapshot->remove_cache = state.remove_cache;
  snapshot->remove_cache_order = state.remove_cache_order;
  vsync::StateBlob blob;
  // Store payload + next_age + the dedup tables (16 bytes per insert
  // identity, 16 per cached remove token): the joiner must refuse the same
  // duplicates its donor would, so the tables are real transferred state.
  blob.bytes = state.store->state_bytes() + 8 +
               16 * state.applied_inserts.size() +
               16 * state.remove_cache.size();
  blob.state = snapshot;
  return blob;
}

void MemoryServer::install_state(const GroupName& group,
                                 const vsync::StateBlob& blob) {
  const auto cls = class_of_group(group);
  PASO_REQUIRE(cls.has_value(), "install on unknown group");
  const auto* snapshot =
      std::any_cast<std::shared_ptr<ClassSnapshot>>(&blob.state);
  PASO_REQUIRE(snapshot != nullptr && *snapshot != nullptr,
               "unexpected state blob");
  ClassState& state = state_of(*cls);
  state.store->load((*snapshot)->objects);
  state.next_age = (*snapshot)->next_age;
  state.markers = (*snapshot)->markers;
  state.marker_index_dirty = true;
  // Donated markers need their own expiry sweeps on this replica.
  for (const Marker& marker : state.markers) {
    schedule_marker_sweep(*cls, marker.expires_at);
  }
  state.applied_inserts = (*snapshot)->applied_inserts;
  state.remove_cache = (*snapshot)->remove_cache;
  state.remove_cache_order = (*snapshot)->remove_cache_order;
  PASO_TRACE("server") << self_ << " installed " << (*snapshot)->objects.size()
                       << " objects for " << group;
}

void MemoryServer::erase_state(const GroupName& group) {
  const auto cls = class_of_group(group);
  if (!cls) return;
  classes_.erase(cls->value);
}

void MemoryServer::on_view_change(const GroupName& group,
                                  const vsync::View& view) {
  const auto cls = class_of_group(group);
  if (!cls) return;
  if (view.contains(self_)) {
    // Ensure the class store exists (covers the first-member join, which has
    // no state transfer).
    state_of(*cls);
  }
  if (view_hook_) view_hook_(*cls, view);
}

std::optional<PasoObject> MemoryServer::local_find(ClassId cls,
                                                   const SearchCriterion& sc) {
  auto it = classes_.find(cls.value);
  PASO_REQUIRE(it != classes_.end(), "local_find on unsupported class");
  network_.ledger().charge_work(self_, it->second.store->query_cost());
  return it->second.store->find(sc);
}

std::size_t MemoryServer::marker_count(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.markers.size();
}

std::size_t MemoryServer::live_count(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.store->size();
}

std::size_t MemoryServer::class_state_bytes(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.store->state_bytes();
}

std::size_t MemoryServer::total_objects() const {
  std::size_t total = 0;
  for (const auto& [cls, state] : classes_) total += state.store->size();
  return total;
}

}  // namespace paso
