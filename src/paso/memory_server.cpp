#include "paso/memory_server.hpp"

#include <algorithm>
#include <any>
#include <utility>

#include "common/logging.hpp"
#include "paso/wire.hpp"

namespace paso {

MemoryServer::MemoryServer(MachineId self, const Schema& schema,
                           ClassStoreFactory factory,
                           net::Transport& network)
    : self_(self),
      schema_(schema),
      factory_(std::move(factory)),
      network_(network) {
  PASO_REQUIRE(factory_ != nullptr, "store factory required");
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    group_to_class_.emplace(schema_.group_name(ClassId{c}), ClassId{c});
  }
}

std::optional<ClassId> MemoryServer::class_of_group(
    const GroupName& group) const {
  auto it = group_to_class_.find(group);
  if (it == group_to_class_.end()) return std::nullopt;
  return it->second;
}

MemoryServer::ClassMetrics* MemoryServer::metrics_of(ClassId cls) {
  if (obs_.metrics == nullptr) return nullptr;
  auto it = class_metrics_.find(cls.value);
  if (it == class_metrics_.end()) {
    const std::string prefix = "server.c" + std::to_string(cls.value) + ".";
    ClassMetrics m;
    m.stores = &obs_.metrics->counter(prefix + "stores", self_);
    m.reads = &obs_.metrics->counter(prefix + "reads", self_);
    m.removes = &obs_.metrics->counter(prefix + "removes", self_);
    m.probes = &obs_.metrics->counter(prefix + "probes", self_);
    m.markers = &obs_.metrics->gauge(prefix + "markers", self_);
    it = class_metrics_.emplace(cls.value, m).first;
  }
  return &it->second;
}

MemoryServer::ClassState& MemoryServer::state_of(ClassId cls) {
  auto it = classes_.find(cls.value);
  if (it == classes_.end()) {
    ClassState state;
    state.store = factory_(cls);
    PASO_REQUIRE(state.store != nullptr, "store factory returned null");
    state.incarnation = next_incarnation_++;
    it = classes_.emplace(cls.value, std::move(state)).first;
  }
  return it->second;
}

std::vector<FieldType> MemoryServer::signature_of(ClassId cls) const {
  return schema_.specs()[schema_.locate(cls).first].signature;
}

void MemoryServer::persist_span(const char* what, double value) {
  if (obs_.tracer == nullptr) return;
  const sim::SimTime now = network_.executor().now();
  for (const obs::TraceId t : obs_.tracer->context()) {
    obs_.tracer->span(t, obs::SpanKind::kPersist, self_, now, what, value);
  }
}

void MemoryServer::note_op(ClassId cls, ClassState& state,
                           const ServerMessage& op, Cost& processing) {
  ++state.lsn;
  // Replays re-read existing records; live ops and delta installs append
  // (a joiner's disk must catch up with the suffix it is being shipped).
  if (apply_mode_ == ApplyMode::kReplay) return;
  if (persist_ == nullptr || !persist_->enabled()) return;
  const Cost cost = persist_->log_op(cls, state.lsn, op);
  processing += cost;
  persist_span("append", cost);
}

void MemoryServer::maybe_checkpoint(ClassId cls, ClassState& state,
                                    Cost& processing) {
  if (persist_ == nullptr || !persist_->enabled()) return;
  const sim::SimTime now = network_.executor().now();
  if (!persist_->checkpoint_due(cls, now)) return;
  const Cost cost =
      persist_->write_checkpoint(cls, checkpoint_image(state), now);
  processing += cost;
  persist_span("checkpoint", cost);
}

persist::CheckpointImage MemoryServer::checkpoint_image(
    ClassState& state) const {
  persist::CheckpointImage image;
  image.lsn = state.lsn;
  image.next_age = state.next_age;
  image.objects = state.store->snapshot();
  image.applied_inserts.assign(state.applied_inserts.begin(),
                               state.applied_inserts.end());
  // The unordered set iterates in an implementation-defined order; sort so
  // the encoded image is byte-identical across replicas with equal state.
  std::sort(image.applied_inserts.begin(), image.applied_inserts.end());
  image.remove_cache.reserve(state.remove_cache_order.size());
  for (const std::uint64_t token : state.remove_cache_order) {
    image.remove_cache.emplace_back(token, state.remove_cache.at(token));
  }
  return image;
}

vsync::GcastResult MemoryServer::handle_gcast(const GroupName& group,
                                              const vsync::Payload& payload) {
  const auto cls = class_of_group(group);
  PASO_REQUIRE(cls.has_value(), "gcast on unknown group");
  const auto* message = std::any_cast<ServerMessage>(&payload.body);
  PASO_REQUIRE(message != nullptr, "unexpected gcast body");

  vsync::GcastResult result;
  ClassState& state = state_of(*cls);
  ClassMetrics* metrics = metrics_of(*cls);
  const std::uint64_t probes_before =
      metrics != nullptr ? state.store->match_probes() : 0;

  if (const auto* store_msg = std::get_if<StoreMsg>(message)) {
    if (metrics != nullptr) metrics->stores->inc();
    apply_store(*cls, state, *store_msg, result.processing);
    // store(o) expects no response payload: the gathered response is empty.
    result.response = std::any{};
    result.response_bytes = 0;
  } else if (const auto* read_msg = std::get_if<MemReadMsg>(message)) {
    if (metrics != nullptr) metrics->reads->inc();
    SearchResponse response = apply_read(state, *read_msg, result.processing);
    result.response_bytes = response_wire_size(response);
    result.response = std::move(response);
  } else if (const auto* remove_msg = std::get_if<RemoveMsg>(message)) {
    if (metrics != nullptr) metrics->removes->inc();
    SearchResponse response =
        apply_remove(*cls, state, *remove_msg, result.processing);
    result.response_bytes = response_wire_size(response);
    result.response = std::move(response);
  } else if (const auto* batch_msg = std::get_if<BatchMsg>(message)) {
    // A batch is its member operations applied in order, sharing one gcast.
    // Each op runs through the same apply helper a lone message would, so
    // dedup, token replay and marker firing are identical per op.
    BatchResponse response;
    response.slots.reserve(batch_msg->ops.size());
    for (const BatchableOp& op : batch_msg->ops) {
      std::visit(
          [&](const auto& sub) {
            using S = std::decay_t<decltype(sub)>;
            if constexpr (std::is_same_v<S, StoreMsg>) {
              if (metrics != nullptr) metrics->stores->inc();
              apply_store(*cls, state, sub, result.processing);
              response.slots.emplace_back(std::nullopt);
            } else if constexpr (std::is_same_v<S, MemReadMsg>) {
              if (metrics != nullptr) metrics->reads->inc();
              response.slots.push_back(
                  apply_read(state, sub, result.processing));
            } else {
              static_assert(std::is_same_v<S, RemoveMsg>);
              if (metrics != nullptr) metrics->removes->inc();
              response.slots.push_back(
                  apply_remove(*cls, state, sub, result.processing));
            }
          },
          op);
    }
    result.response_bytes = response.wire_size();
    result.response = std::move(response);
  } else if (const auto* marker_msg = std::get_if<PlaceMarkerMsg>(message)) {
    // Install the marker, then answer the embedded immediate probe: the
    // response doubles as a mem-read so the issuer learns about an object
    // that was already present (no insert will re-announce it).
    note_op(*cls, state, *message, result.processing);
    sweep_expired_markers(state);
    state.markers.push_back(Marker{marker_msg->marker_id, marker_msg->owner,
                                   marker_msg->criterion,
                                   marker_msg->expires_at});
    state.marker_index_dirty = true;
    schedule_marker_sweep(*cls, marker_msg->expires_at);
    result.processing += state.store->query_cost();
    SearchResponse response = state.store->find(marker_msg->criterion);
    result.response_bytes = response_wire_size(response);
    result.response = std::move(response);
  } else if (const auto* cancel_msg = std::get_if<CancelMarkerMsg>(message)) {
    note_op(*cls, state, *message, result.processing);
    const std::size_t before = state.markers.size();
    std::erase_if(state.markers, [cancel_msg](const Marker& m) {
      return m.marker_id == cancel_msg->marker_id &&
             m.owner == cancel_msg->owner;
    });
    if (state.markers.size() != before) state.marker_index_dirty = true;
    sweep_expired_markers(state);
    result.response = std::any{};
    result.response_bytes = 0;
  }
  maybe_checkpoint(*cls, state, result.processing);
  if (metrics != nullptr) {
    metrics->probes->inc(state.store->match_probes() - probes_before);
    metrics->markers->set(static_cast<double>(state.markers.size()));
  }
  return result;
}

void MemoryServer::apply_store(ClassId cls, ClassState& state,
                               const StoreMsg& msg, Cost& processing) {
  // Even a refused duplicate consumes an lsn: the lsn is a deterministic
  // function of the delivered prefix, duplicates included, so replaying the
  // log reproduces the exact same numbering.
  note_op(cls, state, ServerMessage{msg}, processing);
  if (state.applied_inserts.contains(msg.object.id)) {
    // Duplicate delivery of a store already applied (and possibly since
    // removed): refuse silently so retransmission cannot violate A2.
    ++duplicates_refused_;
    return;
  }
  state.applied_inserts.insert(msg.object.id);
  processing += state.store->insert_cost();
  state.store->store(msg.object, state.next_age++);
  fire_markers(state, msg.object);
  if (apply_mode_ == ApplyMode::kLive && update_hook_) {
    update_hook_(cls, /*is_store=*/true, /*applied=*/true);
  }
}

SearchResponse MemoryServer::apply_read(ClassState& state,
                                        const MemReadMsg& msg,
                                        Cost& processing) {
  processing += state.store->query_cost();
  return state.store->find(msg.criterion);
}

SearchResponse MemoryServer::apply_remove(ClassId cls, ClassState& state,
                                          const RemoveMsg& msg,
                                          Cost& processing) {
  note_op(cls, state, ServerMessage{msg}, processing);
  if (msg.token != 0) {
    auto cached = state.remove_cache.find(msg.token);
    if (cached != state.remove_cache.end()) {
      // Replay of a remove this replica already decided: return the
      // original decision without touching the store (exactly-once).
      ++duplicates_refused_;
      return cached->second;
    }
  }
  SearchResponse response = state.store->remove(msg.criterion);
  processing += response.has_value() ? state.store->remove_cost()
                                     : state.store->query_cost();
  if (apply_mode_ == ApplyMode::kLive && update_hook_) {
    update_hook_(cls, /*is_store=*/false, /*applied=*/response.has_value());
  }
  if (msg.token != 0) {
    state.remove_cache.emplace(msg.token, response);
    state.remove_cache_order.push_back(msg.token);
    while (state.remove_cache_order.size() > kRemoveCacheCap) {
      state.remove_cache.erase(state.remove_cache_order.front());
      state.remove_cache_order.pop_front();
    }
  }
  return response;
}

void MemoryServer::rebuild_marker_index(ClassState& state) {
  state.marker_buckets.clear();
  state.marker_catch_all.clear();
  for (std::size_t i = 0; i < state.markers.size(); ++i) {
    const SearchCriterion& sc = state.markers[i].criterion;
    // Bucket by the first Exact-constrained field: an object can only match
    // this marker if it carries exactly that value there. A marker whose
    // first value-pinning pattern is a OneOf is filed under each of the
    // set's value hashes — an object carries one value at that field, so it
    // still meets the marker in at most one bucket. Range/Prefix and other
    // open patterns stay in the catch-all and are tested on every insert:
    // blocked Range/Prefix reads must wake on any matching insert.
    const Exact* exact = nullptr;
    const OneOf* one_of = nullptr;
    std::size_t field = 0;
    for (std::size_t f = 0; f < sc.fields.size(); ++f) {
      if ((exact = std::get_if<Exact>(&sc.fields[f])) != nullptr) {
        field = f;
        break;
      }
      if (one_of == nullptr &&
          (one_of = std::get_if<OneOf>(&sc.fields[f])) != nullptr) {
        field = f;
      }
    }
    if (exact != nullptr) {
      state.marker_buckets[field][value_hash(exact->value)].push_back(i);
    } else if (one_of != nullptr && !one_of->values.empty()) {
      // Dedup the hashes so a repeated value cannot file the marker twice
      // in one bucket.
      std::vector<std::size_t> hashes;
      hashes.reserve(one_of->values.size());
      for (const Value& v : one_of->values) hashes.push_back(value_hash(v));
      std::sort(hashes.begin(), hashes.end());
      hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
      for (const std::size_t hash : hashes) {
        state.marker_buckets[field][hash].push_back(i);
      }
    } else {
      state.marker_catch_all.push_back(i);
    }
  }
  state.marker_index_dirty = false;
}

void MemoryServer::fire_markers(ClassState& state, const PasoObject& object) {
  // Replays and delta installs never notify: the notifications for these
  // inserts already went out in the class's previous life, and the markers
  // present during replay are not the ones that will survive it anyway.
  if (apply_mode_ != ApplyMode::kLive) return;
  if (state.markers.empty()) return;
  if (state.marker_index_dirty) rebuild_marker_index(state);
  // Candidates: catch-all markers plus, per bucketed field, the markers
  // demanding exactly this object's value there.
  std::vector<std::size_t> candidates = state.marker_catch_all;
  for (const auto& [field, buckets] : state.marker_buckets) {
    if (field >= object.fields.size()) continue;
    auto it = buckets.find(value_hash(object.fields[field]));
    if (it == buckets.end()) continue;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  // Fire in placement order — the order the old linear scan used — so
  // replicas and tests observe identical notification sequences. The unique
  // pass keeps each marker to one probe even if a future bucketing scheme
  // lists it under several candidates' paths.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  const sim::SimTime now = network_.executor().now();
  for (const std::size_t i : candidates) {
    const Marker& marker = state.markers[i];
    // Expired markers never fire; they are erased by the sweeps on the
    // marker-management and state-capture paths, not here, so the insert
    // hot path stays index-sized.
    if (marker.expires_at < now) continue;
    ++marker_probes_;
    if (!marker.criterion.matches(object)) continue;
    if (marker_hook_) marker_hook_(marker.owner, marker.marker_id, object);
  }
}

void MemoryServer::sweep_expired_markers(ClassState& state) {
  if (state.markers.empty()) return;
  const sim::SimTime now = network_.executor().now();
  const std::size_t before = state.markers.size();
  std::erase_if(state.markers,
                [now](const Marker& m) { return m.expires_at < now; });
  if (state.markers.size() != before) state.marker_index_dirty = true;
}

void MemoryServer::schedule_marker_sweep(ClassId cls, sim::SimTime expires_at) {
  if (expires_at >= sim::kNever) return;  // never-expiring marker
  exec::Executor& simulator = network_.executor();
  // The sweep predicate is strict (`expires_at < now`), so fire just past
  // the expiry. The class is looked up by value at fire time: it may have
  // been erased by a crash or leave in between, which makes the timer moot.
  const sim::SimTime at = std::max(simulator.now(), expires_at + 1);
  // Timers capture the class incarnation: a sweep scheduled before a crash
  // or leave must not touch the class reborn after recovery — its markers
  // belong to a different lifetime (and may share expiry times).
  const std::uint64_t incarnation = state_of(cls).incarnation;
  simulator.schedule_at(at, [this, cls, incarnation] {
    auto it = classes_.find(cls.value);
    if (it == classes_.end() || it->second.incarnation != incarnation) {
      ++stale_timer_hits_;
      return;
    }
    sweep_expired_markers(it->second);
    if (ClassMetrics* metrics = metrics_of(cls); metrics != nullptr) {
      metrics->markers->set(static_cast<double>(it->second.markers.size()));
    }
  });
}

vsync::StateBlob MemoryServer::capture_state(const GroupName& group) {
  const auto cls = class_of_group(group);
  PASO_REQUIRE(cls.has_value(), "capture on unknown group");
  ClassState& state = state_of(*cls);
  // Don't donate dead markers: the blob (and its byte cost) carries only
  // live ones.
  sweep_expired_markers(state);
  auto snapshot = std::make_shared<ClassSnapshot>();
  snapshot->objects = state.store->snapshot();
  snapshot->next_age = state.next_age;
  snapshot->lsn = state.lsn;
  snapshot->markers = state.markers;
  snapshot->applied_inserts = state.applied_inserts;
  snapshot->remove_cache = state.remove_cache;
  snapshot->remove_cache_order = state.remove_cache_order;
  vsync::StateBlob blob;
  // Store payload + next_age + the dedup tables (16 bytes per insert
  // identity, 16 per cached remove token): the joiner must refuse the same
  // duplicates its donor would, so the tables are real transferred state.
  blob.bytes = state.store->state_bytes() + 8 +
               16 * state.applied_inserts.size() +
               16 * state.remove_cache.size();
  // With persistence on, the blob also carries the lsn stamp (8 bytes) so
  // the joiner can seed its own log position. Off, the stamp is free: the
  // disabled configuration must reproduce the baseline byte-for-byte.
  if (persist_ != nullptr && persist_->enabled()) blob.bytes += 8;
  blob.state = snapshot;
  return blob;
}

void MemoryServer::install_state(const GroupName& group,
                                 const vsync::StateBlob& blob) {
  const auto cls = class_of_group(group);
  PASO_REQUIRE(cls.has_value(), "install on unknown group");
  const auto* snapshot =
      std::any_cast<std::shared_ptr<ClassSnapshot>>(&blob.state);
  PASO_REQUIRE(snapshot != nullptr && *snapshot != nullptr,
               "unexpected state blob");
  ClassState& state = state_of(*cls);
  state.store->load((*snapshot)->objects);
  state.next_age = (*snapshot)->next_age;
  state.lsn = (*snapshot)->lsn;
  state.markers = (*snapshot)->markers;
  state.marker_index_dirty = true;
  // Donated markers need their own expiry sweeps on this replica.
  for (const Marker& marker : state.markers) {
    schedule_marker_sweep(*cls, marker.expires_at);
  }
  state.applied_inserts = (*snapshot)->applied_inserts;
  state.remove_cache = (*snapshot)->remove_cache;
  state.remove_cache_order = (*snapshot)->remove_cache_order;
  if (persist_ != nullptr && persist_->enabled()) {
    // A full install abandons whatever state line the old log described;
    // appending past it would leave an lsn gap that poisons every later
    // replay. Restart durability from a fresh checkpoint of what we got.
    const Cost cost = persist_->reset_class(*cls, checkpoint_image(state),
                                            network_.executor().now());
    network_.ledger().charge_work(self_, cost);
    persist_span("reset", cost);
  }
  PASO_TRACE("server") << self_ << " installed " << (*snapshot)->objects.size()
                       << " objects for " << group;
}

void MemoryServer::erase_state(const GroupName& group) {
  const auto cls = class_of_group(group);
  if (!cls) return;
  classes_.erase(cls->value);
  // Voluntary leave: the machine renounces the class, so its durable copy
  // is garbage too (a later re-join negotiates from scratch). Crashes never
  // come through here — the disk surviving them is the whole point.
  if (persist_ != nullptr) persist_->erase_class(*cls);
}

void MemoryServer::on_view_change(const GroupName& group,
                                  const vsync::View& view) {
  const auto cls = class_of_group(group);
  if (!cls) return;
  if (view.contains(self_)) {
    // Ensure the class store exists (covers the first-member join, which has
    // no state transfer).
    state_of(*cls);
  }
  if (view_hook_) view_hook_(*cls, view);
}

vsync::DurablePosition MemoryServer::durable_position(const GroupName& group) {
  const auto cls = class_of_group(group);
  if (!cls || persist_ == nullptr || !persist_->enabled()) return {};
  auto it = classes_.find(cls->value);
  if (it == classes_.end()) return {};
  // state.lsn is where the in-memory replica stands; after recover_from_disk
  // that is exactly the durable position (memory was rebuilt from disk).
  return vsync::DurablePosition{true, persist_->checkpoint_epoch(*cls),
                                it->second.lsn};
}

std::optional<std::uint64_t> MemoryServer::delta_floor(const GroupName& group) {
  const auto cls = class_of_group(group);
  if (!cls || persist_ == nullptr || !persist_->enabled()) return std::nullopt;
  if (!classes_.contains(cls->value)) return std::nullopt;
  // The retained log starts just past checkpoint_lsn, so that is the oldest
  // joiner position this member can serve a delta to.
  return persist_->checkpoint_lsn(*cls);
}

std::optional<vsync::StateBlob> MemoryServer::capture_delta(
    const GroupName& group, const vsync::DurablePosition& position) {
  const auto cls = class_of_group(group);
  if (!cls || !position.valid) return std::nullopt;
  if (persist_ == nullptr || !persist_->enabled()) return std::nullopt;
  auto it = classes_.find(cls->value);
  if (it == classes_.end()) return std::nullopt;
  ClassState& state = it->second;
  // Like capture_state: don't donate dead markers (or charge for them).
  sweep_expired_markers(state);
  // A joiner "ahead" of the donor means divergent histories — full transfer.
  if (position.lsn > state.lsn) return std::nullopt;
  Cost read_cost = 0;
  auto suffix = persist_->capture_suffix(*cls, position.lsn, &read_cost);
  network_.ledger().charge_work(self_, read_cost);
  if (!suffix) return std::nullopt;
  // The suffix must reach the replica's current position; a log that lags
  // memory (e.g. a chaos fault ate its tail) cannot seed a delta.
  const std::uint64_t end = suffix->empty() ? position.lsn : suffix->back().lsn;
  if (end != state.lsn) return std::nullopt;
  auto delta = std::make_shared<DeltaSnapshot>();
  delta->from_lsn = position.lsn;
  delta->to_lsn = state.lsn;
  delta->next_age = state.next_age;
  delta->records = std::move(*suffix);
  delta->markers = state.markers;
  vsync::StateBlob blob;
  // Two lsns + next_age, plus each record as framed on disk. Markers are
  // uncounted, mirroring the full blob's accounting.
  blob.bytes = 24;
  for (const persist::WalRecord& rec : delta->records) {
    blob.bytes += persist::kWalFrameBytes + rec.payload.size();
  }
  blob.state = delta;
  persist_span("delta-capture", static_cast<double>(delta->records.size()));
  return blob;
}

bool MemoryServer::install_delta(const GroupName& group,
                                 const vsync::StateBlob& blob) {
  const auto cls = class_of_group(group);
  if (!cls || persist_ == nullptr || !persist_->enabled()) return false;
  const auto* delta_ptr =
      std::any_cast<std::shared_ptr<DeltaSnapshot>>(&blob.state);
  if (delta_ptr == nullptr || *delta_ptr == nullptr) return false;
  const DeltaSnapshot& delta = **delta_ptr;
  auto it = classes_.find(cls->value);
  if (it == classes_.end()) return false;
  ClassState& state = it->second;
  if (state.lsn != delta.from_lsn) return false;
  // Decode every record up front: a corrupt one must fail the install (and
  // trigger the full-transfer fallback) before any of them mutates state.
  const auto resolver = [this](ClassId c) { return signature_of(c); };
  std::vector<ServerMessage> ops;
  ops.reserve(delta.records.size());
  try {
    for (const persist::WalRecord& rec : delta.records) {
      ops.push_back(wire::decode_message(rec.payload, resolver));
    }
  } catch (const InvariantViolation&) {
    return false;
  }
  Cost cost = 0;
  apply_mode_ = ApplyMode::kDeltaInstall;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (delta.records[i].lsn != state.lsn + 1) {
      apply_mode_ = ApplyMode::kLive;
      return false;
    }
    apply_replayed(*cls, state, ops[i], cost);
  }
  apply_mode_ = ApplyMode::kLive;
  if (state.lsn != delta.to_lsn || state.next_age != delta.next_age) {
    return false;
  }
  // Markers never reach disk, so the donor's live set travels whole and
  // replaces whatever the replayed suffix re-placed.
  state.markers = delta.markers;
  state.marker_index_dirty = true;
  for (const Marker& marker : state.markers) {
    schedule_marker_sweep(*cls, marker.expires_at);
  }
  maybe_checkpoint(*cls, state, cost);
  network_.ledger().charge_work(self_, cost);
  persist_span("delta-install", static_cast<double>(delta.records.size()));
  PASO_TRACE("server") << self_ << " delta-installed " << delta.records.size()
                       << " records for " << group;
  return true;
}

void MemoryServer::apply_replayed(ClassId cls, ClassState& state,
                                  const ServerMessage& op, Cost& processing) {
  if (const auto* store_msg = std::get_if<StoreMsg>(&op)) {
    apply_store(cls, state, *store_msg, processing);
  } else if (const auto* remove_msg = std::get_if<RemoveMsg>(&op)) {
    apply_remove(cls, state, *remove_msg, processing);
  } else if (const auto* marker_msg = std::get_if<PlaceMarkerMsg>(&op)) {
    // Same mutation as the live PlaceMarker branch, minus the probe and the
    // response — a replay has nobody to answer.
    note_op(cls, state, op, processing);
    sweep_expired_markers(state);
    state.markers.push_back(Marker{marker_msg->marker_id, marker_msg->owner,
                                   marker_msg->criterion,
                                   marker_msg->expires_at});
    state.marker_index_dirty = true;
    schedule_marker_sweep(cls, marker_msg->expires_at);
  } else if (const auto* cancel_msg = std::get_if<CancelMarkerMsg>(&op)) {
    note_op(cls, state, op, processing);
    const std::size_t before = state.markers.size();
    std::erase_if(state.markers, [cancel_msg](const Marker& m) {
      return m.marker_id == cancel_msg->marker_id &&
             m.owner == cancel_msg->owner;
    });
    if (state.markers.size() != before) state.marker_index_dirty = true;
    sweep_expired_markers(state);
  } else {
    // Mem-reads and batches are never logged (reads consume no lsn; batches
    // log as their member ops), so a WAL can't legitimately contain them.
    PASO_REQUIRE(false, "unreplayable operation in WAL");
  }
}

Cost MemoryServer::recover_from_disk() {
  if (persist_ == nullptr || !persist_->enabled()) return 0;
  Cost total = 0;
  const auto resolver = [this](ClassId c) { return signature_of(c); };
  for (const ClassId cls : persist_->durable_classes()) {
    auto recovered = persist_->recover(cls);
    if (!recovered) continue;
    total += recovered->cost;
    ClassState& state = state_of(cls);
    if (recovered->checkpoint) {
      const persist::CheckpointImage& ckpt = *recovered->checkpoint;
      state.store->load(ckpt.objects);
      state.next_age = ckpt.next_age;
      state.lsn = ckpt.lsn;
      state.applied_inserts.clear();
      state.applied_inserts.insert(ckpt.applied_inserts.begin(),
                                   ckpt.applied_inserts.end());
      state.remove_cache.clear();
      state.remove_cache_order.clear();
      for (const auto& [token, response] : ckpt.remove_cache) {
        state.remove_cache.emplace(token, response);
        state.remove_cache_order.push_back(token);
      }
    }
    Cost work = 0;
    std::size_t applied = 0;
    apply_mode_ = ApplyMode::kReplay;
    for (const persist::WalRecord& rec : recovered->tail) {
      // recover() already truncated at the first gap or bad checksum, so a
      // mismatch here would be a logic error; stop defensively regardless.
      if (rec.lsn != state.lsn + 1) break;
      std::optional<ServerMessage> op;
      try {
        op = wire::decode_message(rec.payload, resolver);
      } catch (const InvariantViolation&) {
        break;  // corruption the frame checksum missed: keep the prefix
      }
      apply_replayed(cls, state, *op, work);
      ++applied;
    }
    apply_mode_ = ApplyMode::kLive;
    total += work;
    persist_span("replay", static_cast<double>(applied));
    PASO_TRACE("server") << self_ << " replayed class " << cls.value << ": "
                         << applied << " records to lsn " << state.lsn;
  }
  if (total != 0) network_.ledger().charge_work(self_, total);
  return total;
}

Cost MemoryServer::checkpoint_class(ClassId cls) {
  if (persist_ == nullptr || !persist_->enabled()) return 0;
  auto it = classes_.find(cls.value);
  if (it == classes_.end()) return 0;
  const Cost cost = persist_->write_checkpoint(
      cls, checkpoint_image(it->second), network_.executor().now());
  network_.ledger().charge_work(self_, cost);
  persist_span("checkpoint", cost);
  return cost;
}

std::optional<PasoObject> MemoryServer::local_find(ClassId cls,
                                                   const SearchCriterion& sc) {
  auto it = classes_.find(cls.value);
  PASO_REQUIRE(it != classes_.end(), "local_find on unsupported class");
  network_.ledger().charge_work(self_, it->second.store->query_cost());
  return it->second.store->find(sc);
}

std::size_t MemoryServer::marker_count(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.markers.size();
}

std::size_t MemoryServer::live_count(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.store->size();
}

std::size_t MemoryServer::class_state_bytes(ClassId cls) const {
  auto it = classes_.find(cls.value);
  return it == classes_.end() ? 0 : it->second.store->state_bytes();
}

std::size_t MemoryServer::total_objects() const {
  std::size_t total = 0;
  for (const auto& [cls, state] : classes_) total += state.store->size();
  return total;
}

}  // namespace paso
