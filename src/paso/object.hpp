// PASO objects.
//
// Objects are immutable once inserted (Section 1: "There is no modify
// operation; modifying a field is logically equivalent to destroying the old
// object and creating a new one"), and carry a unique identity signed by
// their creating process (Section 4), which guarantees the at-most-one-insert
// axiom A2.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "paso/value.hpp"

namespace paso {

using Tuple = std::vector<Value>;

struct PasoObject {
  ObjectId id;
  Tuple fields;

  /// Declared wire size: the identity (16 bytes) plus the fields.
  std::size_t wire_size() const {
    std::size_t total = 16;
    for (const Value& field : fields) total += paso::wire_size(field);
    return total;
  }

  friend bool operator==(const PasoObject& a, const PasoObject& b) {
    return a.id == b.id && a.fields == b.fields;
  }
};

std::string tuple_to_string(const Tuple& tuple);
std::string object_to_string(const PasoObject& object);

}  // namespace paso
