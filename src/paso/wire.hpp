// Wire codec for PASO objects, criteria and server messages.
//
// The simulator passes message bodies in-process, but all cost accounting
// uses declared wire sizes. This codec makes those sizes *honest*: every
// type's `wire_size()` equals the length of its real encoding, verified by
// round-trip tests. Object field encoding is schema-directed — the class
// signature fixes the field types, so values need no per-field tags —
// while criterion patterns carry a 1-byte tag each (already charged by
// pattern_wire_size).
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "paso/criteria.hpp"
#include "paso/messages.hpp"
#include "paso/object.hpp"

namespace paso::wire {

// --- values (schema-typed: no tag) -----------------------------------------

void encode_value(ByteWriter& w, const Value& value);
Value decode_value(ByteReader& r, FieldType type);

// --- objects ---------------------------------------------------------------

/// id (16 bytes) + fields, types given by `signature`.
void encode_object(ByteWriter& w, const PasoObject& object);
PasoObject decode_object(ByteReader& r,
                         const std::vector<FieldType>& signature);

// --- criteria (tagged patterns) ----------------------------------------------

void encode_criterion(ByteWriter& w, const SearchCriterion& sc);
SearchCriterion decode_criterion(ByteReader& r);

// --- server messages ----------------------------------------------------------

/// Encodes the message exactly as the cost model charges it (class id +
/// body). Objects in messages are decoded with the signature supplied by
/// the receiver's schema lookup.
std::vector<std::uint8_t> encode_message(const ServerMessage& message);

/// Signature resolver: class id -> field types (from the schema).
using SignatureResolver =
    std::function<std::vector<FieldType>(ClassId)>;

ServerMessage decode_message(const std::vector<std::uint8_t>& bytes,
                             const SignatureResolver& resolver);

}  // namespace paso::wire
