#include "paso/placement.hpp"

#include <limits>

namespace paso {

std::vector<MachineId> choose_write_group(const net::Topology& topology,
                                          const PlacementRequest& request) {
  PASO_REQUIRE(request.machines > 0, "placement needs machines");
  PASO_REQUIRE(!topology.degenerate(),
               "placement needs a resolved topology (see Topology::resolve)");
  const std::size_t size = std::min(request.lambda + 1, request.machines);
  const std::size_t segments = topology.segment_count();

  // Weighted-hop score: how far (in bridge hops) machine m sits from the
  // reader population. Lower is better.
  std::vector<double> score(request.machines, 0);
  for (std::uint32_t m = 0; m < request.machines; ++m) {
    if (request.read_weight.empty()) {
      for (std::uint32_t r = 0; r < request.machines; ++r) {
        score[m] += static_cast<double>(topology.hops(MachineId{r}, MachineId{m}));
      }
    } else {
      for (std::uint32_t r = 0; r < request.read_weight.size() && r < request.machines; ++r) {
        score[m] += request.read_weight[r] *
                    static_cast<double>(topology.hops(MachineId{r}, MachineId{m}));
      }
    }
  }

  // Spread cap: with >=2 segments, the full group may not sit on one
  // segment (size-1 leaves room for at least one member elsewhere). A
  // single-member group, or a single segment, has nothing to spread.
  const std::size_t cap =
      (segments >= 2 && size >= 2) ? size - 1 : size;

  std::vector<bool> chosen(request.machines, false);
  std::vector<std::size_t> per_segment(segments, 0);
  std::vector<MachineId> group;
  group.reserve(size);
  // Two passes: first honoring the cap, then — if segment populations made
  // the cap infeasible (e.g. a segment with one machine) — filling the
  // remainder unconstrained.
  for (int pass = 0; pass < 2 && group.size() < size; ++pass) {
    const bool capped = pass == 0;
    while (group.size() < size) {
      std::size_t best = request.machines;
      for (std::uint32_t m = 0; m < request.machines; ++m) {
        if (chosen[m]) continue;
        if (capped && per_segment[topology.segment_of(MachineId{m})] >= cap) {
          continue;
        }
        if (best == request.machines) {
          best = m;
          continue;
        }
        const double load_m = m < request.machine_load.size()
                                  ? static_cast<double>(request.machine_load[m])
                                  : 0;
        const double load_b =
            best < request.machine_load.size()
                ? static_cast<double>(request.machine_load[best])
                : 0;
        if (score[m] < score[best] ||
            (score[m] == score[best] && load_m < load_b)) {
          best = m;
        }
      }
      if (best == request.machines) break;  // cap exhausted the candidates
      chosen[best] = true;
      ++per_segment[topology.segment_of(MachineId{static_cast<std::uint32_t>(best)})];
      group.push_back(MachineId{static_cast<std::uint32_t>(best)});
    }
  }
  return group;
}

}  // namespace paso
