// Object classes (Section 4.1).
//
// Objects are partitioned into object classes by `obj-clss`; each class has
// a write group replicating its live objects, and `sc-list` maps a search
// criterion to an exhaustive list of classes that may contain matching
// objects. This file implements both functions via a declarative Schema:
// the application declares class specs (a type signature plus an optional
// hash partition on a key field), and the schema derives
//   obj-clss(o)  — the first spec whose signature matches, hashed into a
//                  partition by the key field, and
//   sc-list(sc)  — every (spec, partition) pair the criterion could reach;
//                  an exact key pattern narrows to one partition.
//
// The sc-list contract (sc ⊆ ∪ obj-clss⁻¹(C_i)) holds by construction: a
// criterion's candidates include every class whose signature it admits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "paso/criteria.hpp"
#include "paso/object.hpp"
#include "paso/value.hpp"

namespace paso {

/// Dense identifier of an object class within a Schema.
struct ClassId {
  std::uint32_t value = 0;
  friend auto operator<=>(const ClassId&, const ClassId&) = default;
};

/// One declared family of classes: a tuple signature, optionally hash-split
/// into `partitions` classes on `key_field`.
struct ClassSpec {
  std::string name;
  std::vector<FieldType> signature;
  std::size_t key_field = 0;
  std::size_t partitions = 1;
};

class Schema {
 public:
  explicit Schema(std::vector<ClassSpec> specs);

  /// obj-clss: the class of a tuple. Fails (nullopt) if no spec admits the
  /// tuple's signature — such tuples cannot be stored in this PASO memory.
  std::optional<ClassId> classify(const Tuple& tuple) const;

  /// sc-list: the exhaustive ordered list of classes that may contain
  /// objects matching `sc`.
  std::vector<ClassId> candidate_classes(const SearchCriterion& sc) const;

  std::size_t class_count() const { return class_count_; }

  /// The group name associated with a class ("wg/<spec>/<partition>").
  const std::string& group_name(ClassId id) const;

  /// Human-readable class label.
  const std::string& class_label(ClassId id) const { return group_name(id); }

  const std::vector<ClassSpec>& specs() const { return specs_; }

  /// Which spec a class id belongs to, and its partition index.
  std::pair<std::size_t, std::size_t> locate(ClassId id) const;

 private:
  bool signature_matches(const ClassSpec& spec, const Tuple& tuple) const;
  bool signature_admits(const ClassSpec& spec, const SearchCriterion& sc) const;
  std::size_t partition_of(const ClassSpec& spec, const Value& key) const;

  std::vector<ClassSpec> specs_;
  std::vector<std::size_t> first_class_of_spec_;
  std::vector<std::string> group_names_;
  std::size_t class_count_ = 0;
};

}  // namespace paso
