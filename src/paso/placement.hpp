// Placement-aware write-group selection under a segment topology.
//
// Section 5.1's round-robin basic support B(C) = {(c+i) mod n} is blind to
// where a class's readers sit; on a multi-segment bus that can put every
// replica across a bridge from every reader. choose_write_group picks the
// lambda+1 members greedily, scoring each candidate by the bridge hops its
// segment is from the class's (weighted) reader population, subject to a
// spread constraint: with two or more segments, no single segment may hold
// the entire write group, so one segment's total loss (a partitioned or
// powered-off wing) still leaves a live replica elsewhere — the
// segment-aware reading of the Section 4 fault-tolerance condition
// (docs/protocol.md).
#pragma once

#include <vector>

#include "common/ids.hpp"
#include "net/topology.hpp"

namespace paso {

struct PlacementRequest {
  std::size_t machines = 0;
  std::size_t lambda = 0;
  /// Expected reads issued per machine (the class's observed or predicted
  /// reader population). Empty = uniform.
  std::vector<double> read_weight;
  /// Classes already placed per machine; ties in the locality score go to
  /// the least-loaded machine so uniform-weight placement still spreads
  /// classes like round-robin does. Empty = no load tie-break.
  std::vector<std::size_t> machine_load;
};

/// Greedy placement: repeatedly take the candidate with the lowest
/// (weighted-hop score, machine_load, id) whose segment still has room
/// under the spread cap. The topology must be resolved (every machine
/// mapped to a segment); on a one-segment topology this degenerates to
/// least-loaded/lowest-id selection.
std::vector<MachineId> choose_write_group(const net::Topology& topology,
                                          const PlacementRequest& request);

}  // namespace paso
