#include "paso/batching.hpp"

#include "common/require.hpp"
#include "paso/messages.hpp"

namespace paso {

vsync::GcastBatcher::Combiner server_batch_combiner() {
  return [](const std::vector<vsync::Payload>& payloads) {
    PASO_REQUIRE(payloads.size() >= 2, "combining a non-batch");
    BatchMsg batch;
    batch.ops.reserve(payloads.size());
    for (const vsync::Payload& payload : payloads) {
      const auto& message = std::any_cast<const ServerMessage&>(payload.body);
      std::visit(
          [&batch](const auto& m) {
            using M = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<M, StoreMsg> ||
                          std::is_same_v<M, MemReadMsg> ||
                          std::is_same_v<M, RemoveMsg>) {
              if (batch.ops.empty()) batch.cls = m.cls;
              PASO_REQUIRE(batch.cls == m.cls,
                           "batch mixes object classes");
              batch.ops.emplace_back(m);
            } else {
              PASO_REQUIRE(false, "unbatchable message reached the batcher");
            }
          },
          message);
    }
    const std::size_t bytes = batch.wire_size();
    return vsync::Payload{ServerMessage{std::move(batch)}, bytes};
  };
}

vsync::GcastBatcher::Splitter server_batch_splitter() {
  return [](const std::optional<std::any>& response, std::size_t count) {
    std::vector<std::optional<std::any>> slots;
    slots.reserve(count);
    if (!response) {
      // Whole batch abandoned: every op sees the abandoned-gcast signal.
      slots.assign(count, std::nullopt);
      return slots;
    }
    const auto* batch = std::any_cast<BatchResponse>(&*response);
    PASO_REQUIRE(batch != nullptr, "batch response of unexpected type");
    PASO_REQUIRE(batch->slots.size() == count,
                 "batch response slot count mismatch");
    for (const SearchResponse& slot : batch->slots) {
      slots.emplace_back(std::any{slot});
    }
    return slots;
  };
}

}  // namespace paso
