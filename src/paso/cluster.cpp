#include "paso/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "net/shard.hpp"
#include "paso/placement.hpp"
#include "storage/hash_store.hpp"

namespace paso {

Cluster::Cluster(Schema schema, ClusterConfig config)
    : schema_(std::move(schema)), config_(std::move(config)) {
  PASO_REQUIRE(config_.machines >= 1, "cluster needs machines");
  PASO_REQUIRE(config_.lambda < config_.machines,
               "lambda must be below the machine count");
  if (!config_.store_factory) {
    config_.store_factory = [](ClassId) {
      return std::make_unique<storage::HashStore>(0);
    };
  }
  config_.runtime.lambda = config_.lambda;

  if (config_.transport == TransportKind::kThreaded) {
    auto threaded = std::make_unique<net::ThreadedTransport>(
        config_.cost_model, config_.machines, config_.topology,
        config_.threaded);
    threaded_ = threaded.get();
    transport_ = std::move(threaded);
  } else if (config_.transport == TransportKind::kSocket) {
    // Forks one process per machine (before this constructor creates any
    // protocol object, and before the transport itself grows threads).
    auto socket = std::make_unique<net::SocketTransport>(
        config_.cost_model, config_.machines, config_.topology,
        config_.socket);
    socket_ = socket.get();
    transport_ = std::move(socket);
  } else {
    auto bus = std::make_unique<net::BusNetwork>(
        simulator_, config_.cost_model, config_.machines, config_.topology);
    bus_ = bus.get();
    transport_ = std::move(bus);
  }
  groups_ = std::make_unique<vsync::GroupService>(*transport_, config_.vsync);
  basic_support_.resize(schema_.class_count());
  class_domain_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(schema_.class_count());
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    class_domain_[c].store(0, std::memory_order_relaxed);
    const GroupName group = schema_.group_name(ClassId{c});
    group_class_.emplace(group, ClassId{c});
    // Sharded transports run disjoint-domain executions concurrently, and
    // std::map insertion is unsafe under concurrent finds — prime every
    // group record now so groups_ is structurally immutable under traffic.
    groups_->prime_group(group);
  }
  initializing_.resize(config_.machines, false);
  init_epoch_.resize(config_.machines, 0);

  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    const MachineId machine{m};
    persistence_.push_back(std::make_unique<persist::PersistenceManager>(
        machine, schema_, config_.persistence));
    // Disk-space accounting: the manager reports every durable write here;
    // the ledger gets the bytes (disk is a charged resource, like work) and
    // the gauge tracks each machine's live footprint when observing.
    persistence_.back()->set_disk_accounting(
        [this, machine](std::uint64_t written, std::uint64_t on_disk) {
          transport_->ledger().charge_disk(machine, written);
          if (obs_ != nullptr) {
            obs_->metrics.gauge("persist.bytes_on_disk", machine)
                .set(static_cast<double>(on_disk));
          }
        });
    servers_.push_back(std::make_unique<MemoryServer>(
        machine, schema_, config_.store_factory, *transport_));
    servers_.back()->set_persistence(persistence_.back().get());
    runtimes_.push_back(std::make_unique<PasoRuntime>(
        machine, schema_, *groups_, *servers_.back(), config_.runtime,
        config_.record_history ? &history_ : nullptr));
    groups_->register_endpoint(machine, *servers_.back());
    wire_machine(machine);
  }

  // Every view installation — in particular the one ending a recovery's
  // state transfer — re-routes each runtime's in-flight robust operations.
  // It also widens the class's domain mask: any machine that enters a view
  // may be targeted by later ops of that class.
  groups_->add_view_listener(
      [this](const GroupName& group, const vsync::View& view) {
        const auto it = group_class_.find(group);
        if (it != group_class_.end()) {
          std::uint64_t bits = 0;
          for (const MachineId m : view.members) {
            bits |= net::domain_bit(m.value);
          }
          class_domain_[it->second.value].fetch_or(bits,
                                                   std::memory_order_relaxed);
        }
        for (const auto& runtime : runtimes_) {
          runtime->on_group_view_change(group, view);
        }
      });

  if (config_.observe) enable_observability();

  if (socket_ != nullptr) {
    // A machine *process* dying (kill -9, crash, wedge past the heartbeat
    // timeout) becomes a protocol-level crash on the same path as an
    // explicit Cluster::crash: view changes expel it, robust operations
    // re-route, and the crash log records it for the checker. The hook
    // fires from the transport's IO/monitor threads with no transport
    // locks held, so taking the stack lock via crash() is safe.
    socket_->set_peer_death_hook(
        [this](MachineId machine, const std::string& /*reason*/) {
          if (transport_->is_up(machine)) crash(machine);
        });
  }
}

Cluster::~Cluster() {
  // Members destroy in reverse declaration order, which would tear down the
  // runtimes and servers while threaded workers could still be delivering
  // into them. Stop all transport threads first; a no-op on the sim bus.
  if (transport_ != nullptr) transport_->shutdown();
}

void Cluster::enable_observability() {
  if (obs_ != nullptr) return;
  obs_ = std::make_unique<obs::Observability>();
  const obs::Obs handle = obs_->handle();
  transport_->set_obs(handle);
  groups_->set_obs(handle);
  for (const auto& manager : persistence_) manager->set_obs(handle);
  for (const auto& server : servers_) server->set_obs(handle);
  for (const auto& runtime : runtimes_) runtime->set_obs(handle);
}

void Cluster::wire_machine(MachineId m) {
  MemoryServer& server = *servers_[m.value];
  PasoRuntime& runtime = *runtimes_[m.value];

  runtime.set_basic_support_provider(
      [this](ClassId cls) { return basic_support(cls); });

  server.set_update_hook(
      [&runtime](ClassId cls, bool /*is_store*/, bool applied) {
        if (applied && runtime.policy() != nullptr) {
          runtime.policy()->on_update_served(cls);
        }
      });

  server.set_view_hook([&runtime](ClassId cls, const vsync::View& view) {
    if (runtime.policy() != nullptr) {
      runtime.policy()->on_view_change(cls, view);
    }
  });

  // Marker notifications travel the bus from the observing server to the
  // marker's owner (the runtime that placed it). The notification wakes a
  // blocked read whose re-execution may fan out to any candidate class, so
  // its delivery cannot be bounded by the insert chain that tripped the
  // marker: advertise the global context for this one send (no extra locks
  // — the delivery, not the send, pays for the wider domain).
  server.set_marker_hook([this, m](MachineId owner, std::uint64_t marker_id,
                                   const PasoObject& object) {
    transport_->with_global_context([&] {
      transport_->send(m, owner, "marker-notify", 8 + object.wire_size(),
                       [this, owner, marker_id, object] {
                         runtimes_[owner.value]->on_marker_notification(
                             marker_id, object);
                       });
    });
  });
}

PasoRuntime& Cluster::runtime(MachineId m) {
  PASO_REQUIRE(m.value < runtimes_.size(), "unknown machine");
  return *runtimes_[m.value];
}

MemoryServer& Cluster::server(MachineId m) {
  PASO_REQUIRE(m.value < servers_.size(), "unknown machine");
  return *servers_[m.value];
}

persist::PersistenceManager& Cluster::persistence(MachineId m) {
  PASO_REQUIRE(m.value < persistence_.size(), "unknown machine");
  return *persistence_[m.value];
}

// ---------------------------------------------------------------------------
// basic support

void Cluster::note_support_domain(ClassId cls,
                                  const std::vector<MachineId>& members) {
  std::uint64_t bits = 0;
  for (const MachineId m : members) bits |= net::domain_bit(m.value);
  class_domain_[cls.value].fetch_or(bits, std::memory_order_relaxed);
}

void Cluster::assign_basic_support() {
  const std::size_t n = config_.machines;
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    if (!basic_support_[c].empty()) continue;  // respect overrides
    std::vector<MachineId> members;
    for (std::size_t i = 0; i <= config_.lambda; ++i) {
      members.push_back(MachineId{static_cast<std::uint32_t>((c + i) % n)});
    }
    basic_support_[c] = std::move(members);
  }
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    note_support_domain(ClassId{c}, basic_support_[c]);
  }
  transport_->run_exclusive([this] {
    for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
      for (const MachineId m : basic_support_[c]) {
        runtimes_[m.value]->request_join(ClassId{c});
      }
    }
  });
  settle();
}

void Cluster::set_basic_support(ClassId cls, std::vector<MachineId> members) {
  PASO_REQUIRE(cls.value < basic_support_.size(), "unknown class");
  PASO_REQUIRE(members.size() == config_.lambda + 1,
               "basic support must have lambda + 1 machines");
  note_support_domain(cls, members);
  basic_support_[cls.value] = std::move(members);
}

std::vector<MachineId> Cluster::basic_support(ClassId cls) const {
  PASO_REQUIRE(cls.value < basic_support_.size(), "unknown class");
  return basic_support_[cls.value];
}

// ---------------------------------------------------------------------------
// placement-aware support (topology locality)

void Cluster::assign_placement_aware_support(
    const std::vector<std::vector<double>>& weights_per_class) {
  std::vector<std::size_t> load(config_.machines, 0);
  for (const auto& support : basic_support_) {
    for (const MachineId m : support) ++load[m.value];  // overrides count
  }
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    if (!basic_support_[c].empty()) continue;  // respect overrides
    PlacementRequest request;
    request.machines = config_.machines;
    request.lambda = config_.lambda;
    if (c < weights_per_class.size()) {
      request.read_weight = weights_per_class[c];
    }
    request.machine_load = load;
    std::vector<MachineId> members =
        choose_write_group(transport_->topology(), request);
    for (const MachineId m : members) ++load[m.value];
    note_support_domain(ClassId{c}, members);
    basic_support_[c] = std::move(members);
  }
  transport_->run_exclusive([this] {
    for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
      for (const MachineId m : basic_support_[c]) {
        runtimes_[m.value]->request_join(ClassId{c});
      }
    }
  });
  settle();
}

std::vector<double> Cluster::observed_read_weights(ClassId cls) const {
  std::vector<double> weights(config_.machines, 0);
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    weights[m] = static_cast<double>(runtimes_[m]->reads_issued(cls));
  }
  return weights;
}

void Cluster::rebalance_placement(ClassId cls) {
  PASO_REQUIRE(cls.value < basic_support_.size(), "unknown class");
  PlacementRequest request;
  request.machines = config_.machines;
  request.lambda = config_.lambda;
  request.read_weight = observed_read_weights(cls);
  double total = 0;
  for (const double w : request.read_weight) total += w;
  if (total == 0) request.read_weight.clear();  // no signal yet: uniform
  request.machine_load.assign(config_.machines, 0);
  for (std::uint32_t c = 0; c < basic_support_.size(); ++c) {
    if (c == cls.value) continue;
    for (const MachineId m : basic_support_[c]) {
      ++request.machine_load[m.value];
    }
  }
  const std::vector<MachineId> target =
      choose_write_group(transport_->topology(), request);

  const std::vector<MachineId> current = basic_support_[cls.value];
  auto contains = [](const std::vector<MachineId>& v, MachineId m) {
    return std::find(v.begin(), v.end(), m) != v.end();
  };
  std::vector<MachineId> joiners;
  std::vector<MachineId> leavers;
  for (const MachineId m : target) {
    if (!contains(current, m)) joiners.push_back(m);
  }
  for (const MachineId m : current) {
    if (!contains(target, m)) leavers.push_back(m);
  }
  if (joiners.empty() && leavers.empty()) return;
  note_support_domain(cls, target);
  basic_support_[cls.value] = target;
  // The join/leave issues are protocol work: take the stack (globally — a
  // membership migration touches joiners, leavers, and every listener)
  // before touching the runtimes. Plain call on the simulated bus.
  transport_->run_exclusive([this, cls, &joiners, &leavers] {
    if (joiners.empty()) {
      for (const MachineId m : leavers) runtimes_[m.value]->request_leave(cls);
      return;
    }
    // Join-before-leave: the group only shrinks back to lambda+1 once every
    // replacement member holds the state, so |wg(C)| never dips below the
    // fault-tolerance floor mid-migration.
    auto pending = std::make_shared<std::size_t>(joiners.size());
    for (const MachineId m : joiners) {
      runtimes_[m.value]->request_join(
          cls, [this, cls, leavers, pending](bool) {
            if (--*pending == 0) {
              for (const MachineId l : leavers) {
                runtimes_[l.value]->request_leave(cls);
              }
            }
          });
    }
  });
}

// ---------------------------------------------------------------------------
// fault plane

void Cluster::crash(MachineId m) {
  PASO_REQUIRE(transport_->is_up(m), "machine already down");
  // Mutates protocol state: excluded against deliveries on the threaded
  // transport (plain call on the sim bus, where everything is one thread).
  transport_->run_exclusive([this, m] {
    groups_->machine_crashed(m);
    servers_[m.value]->crash_reset();
    runtimes_[m.value]->on_machine_crash();
    initializing_[m.value] = false;  // crashing mid-init is just down again
    crash_log_.push_back({m, transport_->now()});
  });
}

void Cluster::recover(MachineId m, std::function<void()> initialized) {
  if (socket_ != nullptr && !socket_->endpoint_alive(m)) {
    // The machine's process is gone (that's usually why it crashed): give
    // it a fresh one before the protocol-level re-join. Blocks on the
    // spawn handshake, so it must happen outside the stack lock.
    PASO_REQUIRE(socket_->respawn(m),
                 "machine process respawn failed; cannot recover");
  }
  transport_->run_exclusive([this, m,
                             initialized = std::move(initialized)]() mutable {
    recover_locked(m, std::move(initialized));
  });
}

void Cluster::recover_locked(MachineId m, std::function<void()> initialized) {
  groups_->machine_recovered(m);
  // With persistence on, the machine first rebuilds class state from its
  // local checkpoint + log (cost already charged to its ledger row); the
  // re-joins below start only after that replay time has elapsed, and each
  // g-join then advertises the replayed durable position so the donor can
  // ship a delta instead of the full state. Disabled, this is free and the
  // recovery timeline is byte-identical to the non-persistent baseline.
  const Cost replay_cost = servers_[m.value]->recover_from_disk();
  // Initialization phase: determine which groups this server belongs to —
  // the classes whose basic support contains it — and re-join them one by
  // one (Section 4.2). The machine counts as faulty until all joins finish.
  std::vector<ClassId> to_join;
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    const auto& support = basic_support_[c];
    if (std::find(support.begin(), support.end(), m) != support.end()) {
      to_join.push_back(ClassId{c});
    }
  }
  if (to_join.empty()) {
    // Nothing to re-replicate: initialization is immediate.
    if (initialized) {
      transport_->executor().schedule_after(0, std::move(initialized));
    }
    return;
  }
  initializing_[m.value] = true;
  const std::uint64_t epoch = ++init_epoch_[m.value];
  auto pending = std::make_shared<std::size_t>(to_join.size());
  auto note_done = [this, m, epoch, pending,
                    initialized = std::move(initialized)](bool) {
    if (--*pending == 0 && init_epoch_[m.value] == epoch) {
      // A crash-and-re-recovery in the meantime bumps the epoch; only the
      // current initialization may clear the flag.
      initializing_[m.value] = false;
      if (initialized) initialized();
    }
  };
  auto start_joins = [this, m, to_join, note_done] {
    for (const ClassId cls : to_join) {
      runtimes_[m.value]->request_join(cls, note_done);
    }
  };
  if (replay_cost > 0) {
    transport_->executor().schedule_after(replay_cost, std::move(start_joins));
  } else {
    start_joins();
  }
}

std::size_t Cluster::failed_count() const {
  std::size_t failed = 0;
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    if (!transport_->is_up(MachineId{m})) ++failed;
  }
  return failed;
}

std::size_t Cluster::faulty_count() const {
  std::size_t faulty = 0;
  for (std::uint32_t m = 0; m < config_.machines; ++m) {
    if (!transport_->is_up(MachineId{m}) || initializing_[m]) ++faulty;
  }
  return faulty;
}

bool Cluster::fault_tolerance_condition_holds() const {
  const std::size_t k = faulty_count();
  if (k > config_.lambda) return false;  // outside the fault model
  for (std::uint32_t c = 0; c < schema_.class_count(); ++c) {
    const vsync::View view = groups_->view_of(schema_.group_name(ClassId{c}));
    std::size_t operational = 0;
    for (const MachineId m : view.members) {
      if (transport_->is_up(m)) ++operational;
    }
    if (operational + k <= config_.lambda) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// synchronous wrappers
//
// One body per wrapper, two driving modes. kSim pumps the simulator until
// the callback fires (exactly the pre-seam behavior, event for event).
// kThreaded issues the operation under the transport's stack lock, then
// blocks the calling thread on a condition variable the completion callback
// signals; the callback runs under the stack lock and takes the waiter's
// mutex, which is safe because no thread ever takes the stack lock while
// holding a waiter mutex.

namespace {

struct SyncWaiter {
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;

  void signal() {
    std::lock_guard<std::mutex> lock(mu);
    fired = true;
    cv.notify_one();
  }
  bool wait() {
    std::unique_lock<std::mutex> lock(mu);
    // No timeout: a timed-out return would leave the callback's captured
    // result slot dangling on this stack frame. A genuinely hung threaded
    // operation is surfaced by the test harness's process-level timeout.
    cv.wait(lock, [this] { return fired; });
    return fired;
  }
};

}  // namespace

std::uint64_t Cluster::op_domain(MachineId issuer,
                                 const std::vector<ClassId>& classes) const {
  if (obs_ != nullptr || config_.runtime.admission != AdmissionMode::kOff ||
      config_.runtime.batch_window != 0 || config_.machines > 64 ||
      classes.empty()) {
    return net::kGlobalDomain;
  }
  std::uint64_t domain = net::domain_bit(issuer.value);
  for (const ClassId cls : classes) {
    const std::uint64_t mask =
        class_domain_[cls.value].load(std::memory_order_relaxed);
    if (mask == 0) return net::kGlobalDomain;  // support never assigned
    domain |= mask;
  }
  return domain;
}

void Cluster::drive_sync(
    std::uint64_t domain,
    const std::function<void(std::function<void()>)>& issue) {
  if (config_.transport == TransportKind::kSim) {
    bool done = false;
    issue([&done] { done = true; });
    simulator_.run_while_pending([&done] { return done; });
    return;
  }
  auto waiter = std::make_shared<SyncWaiter>();
  transport_->run_scoped(
      domain, [&issue, waiter] { issue([waiter] { waiter->signal(); }); });
  waiter->wait();
}

bool Cluster::insert_sync(ProcessId process, Tuple fields) {
  const std::optional<ClassId> cls = schema_.classify(fields);
  const std::uint64_t domain =
      op_domain(process.machine, cls.has_value()
                                     ? std::vector<ClassId>{*cls}
                                     : std::vector<ClassId>{});
  bool done = false;
  drive_sync(domain, [&](std::function<void()> fire) {
    runtime(process.machine)
        .insert(process, std::move(fields), [&done, fire = std::move(fire)] {
          done = true;
          fire();
        });
  });
  return done;
}

SearchResponse Cluster::read_sync(ProcessId process, SearchCriterion sc) {
  const std::uint64_t domain =
      op_domain(process.machine, schema_.candidate_classes(sc));
  std::optional<SearchResponse> out;
  drive_sync(domain, [&](std::function<void()> fire) {
    runtime(process.machine)
        .read(process, std::move(sc),
              [&out, fire = std::move(fire)](SearchResponse result) {
                out = std::move(result);
                fire();
              });
  });
  return out.has_value() ? std::move(*out) : SearchResponse{std::nullopt};
}

SearchResponse Cluster::read_del_sync(ProcessId process, SearchCriterion sc) {
  const std::uint64_t domain =
      op_domain(process.machine, schema_.candidate_classes(sc));
  std::optional<SearchResponse> out;
  drive_sync(domain, [&](std::function<void()> fire) {
    runtime(process.machine)
        .read_del(process, std::move(sc),
                  [&out, fire = std::move(fire)](SearchResponse result) {
                    out = std::move(result);
                    fire();
                  });
  });
  return out.has_value() ? std::move(*out) : SearchResponse{std::nullopt};
}

SearchResponse Cluster::read_blocking_sync(ProcessId process,
                                           SearchCriterion sc,
                                           BlockingMode mode,
                                           sim::SimTime deadline) {
  const std::uint64_t domain =
      op_domain(process.machine, schema_.candidate_classes(sc));
  std::optional<SearchResponse> out;
  drive_sync(domain, [&](std::function<void()> fire) {
    runtime(process.machine)
        .read_blocking(process, std::move(sc),
                       [&out, fire = std::move(fire)](SearchResponse result) {
                         out = std::move(result);
                         fire();
                       },
                       mode, deadline);
  });
  return out.has_value() ? std::move(*out) : SearchResponse{std::nullopt};
}

// ---------------------------------------------------------------------------
// settling

void Cluster::settle() {
  if (config_.transport == TransportKind::kSim) {
    simulator_.run();
    return;
  }
  if (threaded_ != nullptr) {
    threaded_->quiesce();
  } else {
    socket_->quiesce();
  }
}

void Cluster::settle_for(sim::SimTime duration) {
  if (config_.transport == TransportKind::kSim) {
    simulator_.run_until(simulator_.now() + duration);
    return;
  }
  // 1 virtual unit = 1 microsecond of wall clock on the threaded transport.
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(duration)));
}

}  // namespace paso
