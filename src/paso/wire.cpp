#include "paso/wire.hpp"

namespace paso::wire {

namespace {

enum class PatternTag : std::uint8_t {
  kAny = 0,
  kTypedAny = 1,
  kExact = 2,
  kIntRange = 3,
  kRealRange = 4,
  kTextPrefix = 5,
  kOneOf = 6,
  kRange = 7,
};

// Range bound flags packed into one byte after the tag.
constexpr std::uint8_t kRangeLoPresent = 1 << 0;
constexpr std::uint8_t kRangeLoExclusive = 1 << 1;
constexpr std::uint8_t kRangeHiPresent = 1 << 2;
constexpr std::uint8_t kRangeHiExclusive = 1 << 3;

// Criterion arity header: the top bit signals a trailing TopK selector, so
// a plain criterion's encoding is unchanged. 2^31 fields remain plenty.
constexpr std::uint32_t kArityTopK = 0x80000000u;

enum class MessageTag : std::uint8_t {
  kStore = 0,
  kMemRead = 1,
  kRemove = 2,
  kPlaceMarker = 3,
  kCancelMarker = 4,
  kBatch = 5,
};

// Sub-tags for ops inside a BatchMsg (one byte each; the ops shed their own
// class headers since the batch header names the class once).
enum class BatchOpTag : std::uint8_t {
  kStore = 0,
  kMemRead = 1,
  kRemove = 2,
};

void encode_object_id(ByteWriter& w, const ObjectId& id) {
  w.u32(id.creator.machine.value);
  w.u32(id.creator.ordinal);
  w.u64(id.sequence);
}

ObjectId decode_object_id(ByteReader& r) {
  ObjectId id;
  id.creator.machine.value = r.u32();
  id.creator.ordinal = r.u32();
  id.sequence = r.u64();
  return id;
}

}  // namespace

void encode_value(ByteWriter& w, const Value& value) {
  switch (type_of(value)) {
    case FieldType::kInt:
      w.i64(std::get<std::int64_t>(value));
      return;
    case FieldType::kReal:
      w.f64(std::get<double>(value));
      return;
    case FieldType::kText:
      w.text(std::get<std::string>(value));
      return;
    case FieldType::kBool:
      w.u8(std::get<bool>(value) ? 1 : 0);
      return;
  }
  PASO_REQUIRE(false, "unknown value type");
}

Value decode_value(ByteReader& r, FieldType type) {
  switch (type) {
    case FieldType::kInt:
      return Value{r.i64()};
    case FieldType::kReal:
      return Value{r.f64()};
    case FieldType::kText:
      return Value{r.text()};
    case FieldType::kBool:
      return Value{r.u8() != 0};
  }
  PASO_REQUIRE(false, "unknown field type");
  return Value{};
}

void encode_object(ByteWriter& w, const PasoObject& object) {
  encode_object_id(w, object.id);
  for (const Value& field : object.fields) {
    encode_value(w, field);
  }
}

PasoObject decode_object(ByteReader& r,
                         const std::vector<FieldType>& signature) {
  PasoObject object;
  object.id = decode_object_id(r);
  object.fields.reserve(signature.size());
  for (const FieldType type : signature) {
    object.fields.push_back(decode_value(r, type));
  }
  return object;
}

void encode_criterion(ByteWriter& w, const SearchCriterion& sc) {
  // 4-byte header: arity (matches the criterion's declared 4-byte header),
  // top bit flags a trailing ranked selector.
  w.u32(static_cast<std::uint32_t>(sc.fields.size()) |
        (sc.top_k ? kArityTopK : 0));
  for (const FieldPattern& pattern : sc.fields) {
    std::visit(
        [&w](const auto& p) {
          using P = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<P, AnyField>) {
            w.u8(static_cast<std::uint8_t>(PatternTag::kAny) << 4);
          } else if constexpr (std::is_same_v<P, TypedAny>) {
            w.u8(static_cast<std::uint8_t>(PatternTag::kTypedAny) << 4);
            w.u8(static_cast<std::uint8_t>(p.type));
          } else if constexpr (std::is_same_v<P, Exact>) {
            // Pattern tag and value type share the single tag byte so the
            // encoding matches the charged 1 + wire_size(value).
            w.u8(static_cast<std::uint8_t>(
                (static_cast<std::uint8_t>(PatternTag::kExact) << 4) |
                static_cast<std::uint8_t>(type_of(p.value))));
            encode_value(w, p.value);
          } else if constexpr (std::is_same_v<P, IntRange>) {
            w.u8(static_cast<std::uint8_t>(PatternTag::kIntRange) << 4);
            w.i64(p.lo);
            w.i64(p.hi);
          } else if constexpr (std::is_same_v<P, RealRange>) {
            w.u8(static_cast<std::uint8_t>(PatternTag::kRealRange) << 4);
            w.f64(p.lo);
            w.f64(p.hi);
          } else if constexpr (std::is_same_v<P, Range>) {
            w.u8(static_cast<std::uint8_t>(PatternTag::kRange) << 4);
            std::uint8_t flags = 0;
            if (p.lo) {
              flags |= kRangeLoPresent;
              if (p.lo->exclusive) flags |= kRangeLoExclusive;
            }
            if (p.hi) {
              flags |= kRangeHiPresent;
              if (p.hi->exclusive) flags |= kRangeHiExclusive;
            }
            w.u8(flags);
            if (p.lo) {
              w.u8(static_cast<std::uint8_t>(type_of(p.lo->value)));
              encode_value(w, p.lo->value);
            }
            if (p.hi) {
              w.u8(static_cast<std::uint8_t>(type_of(p.hi->value)));
              encode_value(w, p.hi->value);
            }
          } else if constexpr (std::is_same_v<P, TextPrefix>) {
            w.u8(static_cast<std::uint8_t>(PatternTag::kTextPrefix) << 4);
            w.text(p.prefix);
          } else {
            static_assert(std::is_same_v<P, OneOf>);
            w.u8(static_cast<std::uint8_t>(PatternTag::kOneOf) << 4);
            w.u32(static_cast<std::uint32_t>(p.values.size()));
            for (const Value& v : p.values) {
              w.u8(static_cast<std::uint8_t>(type_of(v)));
              encode_value(w, v);
            }
          }
        },
        pattern);
  }
  if (sc.top_k) {
    w.u32(static_cast<std::uint32_t>(sc.top_k->field));
    w.u32(sc.top_k->k);
    w.u8(sc.top_k->descending ? 1 : 0);
    w.u8(sc.top_k->score_fn);
  }
}

SearchCriterion decode_criterion(ByteReader& r) {
  SearchCriterion sc;
  const std::uint32_t header = r.u32();
  const bool has_top_k = (header & kArityTopK) != 0;
  const std::uint32_t arity = header & ~kArityTopK;
  sc.fields.reserve(arity);
  for (std::uint32_t i = 0; i < arity; ++i) {
    const std::uint8_t tag_byte = r.u8();
    const auto tag = static_cast<PatternTag>(tag_byte >> 4);
    switch (tag) {
      case PatternTag::kAny:
        sc.fields.emplace_back(AnyField{});
        break;
      case PatternTag::kTypedAny:
        sc.fields.emplace_back(TypedAny{static_cast<FieldType>(r.u8())});
        break;
      case PatternTag::kExact: {
        const auto type = static_cast<FieldType>(tag_byte & 0x0F);
        sc.fields.emplace_back(Exact{decode_value(r, type)});
        break;
      }
      case PatternTag::kIntRange: {
        IntRange range;
        range.lo = r.i64();
        range.hi = r.i64();
        sc.fields.emplace_back(range);
        break;
      }
      case PatternTag::kRealRange: {
        RealRange range;
        range.lo = r.f64();
        range.hi = r.f64();
        sc.fields.emplace_back(range);
        break;
      }
      case PatternTag::kTextPrefix:
        sc.fields.emplace_back(TextPrefix{r.text()});
        break;
      case PatternTag::kRange: {
        Range range;
        const std::uint8_t flags = r.u8();
        if (flags & kRangeLoPresent) {
          const auto type = static_cast<FieldType>(r.u8());
          range.lo = Bound{decode_value(r, type),
                           (flags & kRangeLoExclusive) != 0};
        }
        if (flags & kRangeHiPresent) {
          const auto type = static_cast<FieldType>(r.u8());
          range.hi = Bound{decode_value(r, type),
                           (flags & kRangeHiExclusive) != 0};
        }
        sc.fields.emplace_back(std::move(range));
        break;
      }
      case PatternTag::kOneOf: {
        OneOf one_of;
        const std::uint32_t count = r.u32();
        one_of.values.reserve(count);
        for (std::uint32_t v = 0; v < count; ++v) {
          const auto type = static_cast<FieldType>(r.u8());
          one_of.values.push_back(decode_value(r, type));
        }
        sc.fields.emplace_back(std::move(one_of));
        break;
      }
      default:
        PASO_REQUIRE(false, "unknown pattern tag");
    }
  }
  if (has_top_k) {
    TopK top_k;
    top_k.field = r.u32();
    top_k.k = r.u32();
    top_k.descending = (r.u8() & 1) != 0;
    top_k.score_fn = r.u8();
    sc.top_k = top_k;
  }
  return sc;
}

std::vector<std::uint8_t> encode_message(const ServerMessage& message) {
  ByteWriter w;
  std::visit(
      [&w](const auto& m) {
        using M = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<M, StoreMsg>) {
          // The 4-byte class-id header doubles as the message tag: its top
          // nibble carries the kind, leaving 2^28 classes.
          w.u32((static_cast<std::uint32_t>(MessageTag::kStore) << 28) |
                m.cls.value);
          encode_object(w, m.object);
        } else if constexpr (std::is_same_v<M, MemReadMsg>) {
          w.u32((static_cast<std::uint32_t>(MessageTag::kMemRead) << 28) |
                m.cls.value);
          encode_criterion(w, m.criterion);
        } else if constexpr (std::is_same_v<M, RemoveMsg>) {
          w.u32((static_cast<std::uint32_t>(MessageTag::kRemove) << 28) |
                m.cls.value);
          w.u64(m.token);
          encode_criterion(w, m.criterion);
        } else if constexpr (std::is_same_v<M, PlaceMarkerMsg>) {
          w.u32((static_cast<std::uint32_t>(MessageTag::kPlaceMarker) << 28) |
                m.cls.value);
          w.u64(m.marker_id);
          w.u32(m.owner.value);
          w.f64(m.expires_at);
          encode_criterion(w, m.criterion);
        } else if constexpr (std::is_same_v<M, CancelMarkerMsg>) {
          w.u32((static_cast<std::uint32_t>(MessageTag::kCancelMarker) << 28) |
                m.cls.value);
          w.u64(m.marker_id);
          w.u32(m.owner.value);
        } else {
          static_assert(std::is_same_v<M, BatchMsg>);
          w.u32((static_cast<std::uint32_t>(MessageTag::kBatch) << 28) |
                m.cls.value);
          w.u32(static_cast<std::uint32_t>(m.ops.size()));
          for (const BatchableOp& op : m.ops) {
            std::visit(
                [&w](const auto& sub) {
                  using S = std::decay_t<decltype(sub)>;
                  if constexpr (std::is_same_v<S, StoreMsg>) {
                    w.u8(static_cast<std::uint8_t>(BatchOpTag::kStore));
                    encode_object(w, sub.object);
                  } else if constexpr (std::is_same_v<S, MemReadMsg>) {
                    w.u8(static_cast<std::uint8_t>(BatchOpTag::kMemRead));
                    encode_criterion(w, sub.criterion);
                  } else {
                    static_assert(std::is_same_v<S, RemoveMsg>);
                    w.u8(static_cast<std::uint8_t>(BatchOpTag::kRemove));
                    w.u64(sub.token);
                    encode_criterion(w, sub.criterion);
                  }
                },
                op);
          }
        }
      },
      message);
  return w.take();
}

ServerMessage decode_message(const std::vector<std::uint8_t>& bytes,
                             const SignatureResolver& resolver) {
  ByteReader r(bytes);
  const std::uint32_t header = r.u32();
  const auto tag = static_cast<MessageTag>(header >> 28);
  const ClassId cls{header & 0x0FFFFFFF};
  switch (tag) {
    case MessageTag::kStore: {
      PASO_REQUIRE(resolver != nullptr, "store decode needs a schema");
      StoreMsg msg;
      msg.cls = cls;
      msg.object = decode_object(r, resolver(cls));
      return msg;
    }
    case MessageTag::kMemRead: {
      MemReadMsg msg;
      msg.cls = cls;
      msg.criterion = decode_criterion(r);
      return msg;
    }
    case MessageTag::kRemove: {
      RemoveMsg msg;
      msg.cls = cls;
      msg.token = r.u64();
      msg.criterion = decode_criterion(r);
      return msg;
    }
    case MessageTag::kPlaceMarker: {
      PlaceMarkerMsg msg;
      msg.cls = cls;
      msg.marker_id = r.u64();
      msg.owner.value = r.u32();
      msg.expires_at = r.f64();
      msg.criterion = decode_criterion(r);
      return msg;
    }
    case MessageTag::kCancelMarker: {
      CancelMarkerMsg msg;
      msg.cls = cls;
      msg.marker_id = r.u64();
      msg.owner.value = r.u32();
      return msg;
    }
    case MessageTag::kBatch: {
      BatchMsg msg;
      msg.cls = cls;
      const std::uint32_t count = r.u32();
      msg.ops.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto sub = static_cast<BatchOpTag>(r.u8());
        switch (sub) {
          case BatchOpTag::kStore: {
            PASO_REQUIRE(resolver != nullptr, "store decode needs a schema");
            StoreMsg op;
            op.cls = cls;
            op.object = decode_object(r, resolver(cls));
            msg.ops.emplace_back(std::move(op));
            break;
          }
          case BatchOpTag::kMemRead: {
            MemReadMsg op;
            op.cls = cls;
            op.criterion = decode_criterion(r);
            msg.ops.emplace_back(std::move(op));
            break;
          }
          case BatchOpTag::kRemove: {
            RemoveMsg op;
            op.cls = cls;
            op.token = r.u64();
            op.criterion = decode_criterion(r);
            msg.ops.emplace_back(std::move(op));
            break;
          }
          default:
            PASO_REQUIRE(false, "unknown batch op tag");
        }
      }
      return msg;
    }
  }
  PASO_REQUIRE(false, "unknown message tag");
  return MemReadMsg{};
}

}  // namespace paso::wire
