// Cluster: the whole PASO system in one object.
//
// Builds the full stack for n machines — simulator, bus network, group
// service, one memory server + runtime per machine — and wires the hooks
// between layers (update/view hooks to the replication policy, marker
// notifications back to their owners). Also owns the basic-support
// assignment B(C) of Section 5.1, the crash/recovery fault plane of Section
// 3.1, and synchronous convenience wrappers that pump the simulator until an
// operation completes (how examples and tests drive the system).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/bus_network.hpp"
#include "net/socket_transport.hpp"
#include "net/threaded_transport.hpp"
#include "obs/obs.hpp"
#include "paso/classes.hpp"
#include "paso/memory_server.hpp"
#include "paso/runtime.hpp"
#include "persist/manager.hpp"
#include "semantics/checker.hpp"
#include "semantics/history.hpp"
#include "sim/simulator.hpp"
#include "storage/object_store.hpp"
#include "vsync/group_service.hpp"

namespace paso {

/// Which transport carries the cluster's messages. kSim (the default) is the
/// virtual-time serializing bus driven by sim::Simulator — deterministic,
/// used by every test and every model-cost baseline. kThreaded is the
/// real-clock net::ThreadedTransport: one worker thread per machine,
/// steady_clock timers, 1 virtual cost unit = 1 microsecond for every
/// protocol interval (poll_interval, marker_ttl, backoff, detection delay).
/// kSocket goes one step further out of the address space: each machine is
/// its own OS process on a real TCP wire (net::SocketTransport); a machine
/// process dying (kill -9 included) is detected by heartbeat/EOF and mapped
/// onto the same crash/view-change path as Cluster::crash.
enum class TransportKind { kSim, kThreaded, kSocket };

struct ClusterConfig {
  std::size_t machines = 8;
  std::size_t lambda = 1;
  CostModel cost_model{};
  TransportKind transport = TransportKind::kSim;
  /// Ring sizing etc. for TransportKind::kThreaded; ignored under kSim.
  net::ThreadedTransportOptions threaded{};
  /// Ingress bounds, heartbeat cadence and machined path for
  /// TransportKind::kSocket; ignored otherwise.
  net::SocketTransportOptions socket{};
  /// Bus layout. Default (degenerate) = the classic single serializing bus
  /// running `cost_model`, byte-for-byte the pre-topology behavior. An
  /// explicit topology gives each segment its own alpha/beta and bus queue,
  /// with per-hop bridge costs between segments (net/topology.hpp); build
  /// one with net::Topology::even(segments, machines, model, bridge_alpha,
  /// bridge_beta) or the explicit per-machine constructor.
  net::Topology topology{};
  vsync::GroupService::Options vsync{};
  RuntimeConfig runtime{};
  /// One store per (server, class); defaults to HashStore on field 0.
  /// Takes the ClassId so different classes can use different structures
  /// (e.g. OrderedStore for a range-query class).
  MemoryServer::ClassStoreFactory store_factory;
  bool record_history = true;
  /// Create the metrics registry + op tracer at construction and install
  /// them across every layer. Off by default: the stack then carries only
  /// null observability handles and behaves byte-for-byte like before.
  bool observe = false;
  /// Durable persistence (per-machine WAL + checkpoints, delta state
  /// transfer on re-join). Off by default: disabled runs perform no disk
  /// I/O and reproduce the non-persistent baseline byte-for-byte.
  persist::PersistenceConfig persistence{};
};

class Cluster {
 public:
  Cluster(Schema schema, ClusterConfig config = {});
  /// Stops the threaded transport's worker/timer threads before any
  /// protocol object is destroyed; trivial for the simulated bus.
  ~Cluster();

  // --- plumbing -------------------------------------------------------------
  /// The virtual-time simulator. Meaningful only under TransportKind::kSim
  /// (chaos schedules, deterministic settle); it exists but is never pumped
  /// under kThreaded.
  sim::Simulator& simulator() { return simulator_; }
  /// The transport, whichever kind this cluster runs on.
  net::Transport& transport() { return *transport_; }
  TransportKind transport_kind() const { return config_.transport; }
  /// The simulated bus (chaos windows, segment stats). Sim clusters only.
  net::BusNetwork& network() {
    PASO_REQUIRE(bus_ != nullptr, "not a simulated-bus cluster");
    return *bus_;
  }
  /// The threaded transport (quiesce, fabric counters). Threaded only.
  net::ThreadedTransport& threaded_transport() {
    PASO_REQUIRE(threaded_ != nullptr, "not a threaded cluster");
    return *threaded_;
  }
  /// The socket transport (child pids, supervisor, respawn, fabric
  /// counters). Socket clusters only.
  net::SocketTransport& socket_transport() {
    PASO_REQUIRE(socket_ != nullptr, "not a socket cluster");
    return *socket_;
  }
  vsync::GroupService& groups() { return *groups_; }
  net::CostLedger& ledger() { return transport_->ledger(); }
  const Schema& schema() const { return schema_; }
  semantics::HistoryRecorder& history() { return history_; }
  std::size_t machine_count() const { return config_.machines; }
  std::size_t lambda() const { return config_.lambda; }

  PasoRuntime& runtime(MachineId m);
  MemoryServer& server(MachineId m);

  /// The machine's persistence manager (always constructed; enabled per
  /// `ClusterConfig::persistence`). Its disk survives crashes — only
  /// `recover` reads it back.
  persist::PersistenceManager& persistence(MachineId m);
  bool persistence_enabled() const { return config_.persistence.enabled; }

  // --- observability ---------------------------------------------------------
  /// Switch telemetry on mid-life (idempotent; `ClusterConfig::observe` does
  /// it at construction). Existing counters start from zero, not from the
  /// cluster's birth.
  void enable_observability();
  bool observing() const { return obs_ != nullptr; }
  /// Valid only while observing.
  obs::MetricsRegistry& metrics() { return obs_->metrics; }
  obs::OpTracer& tracer() { return obs_->tracer; }
  ProcessId process(MachineId m, std::uint32_t ordinal = 0) const {
    return ProcessId{m, ordinal};
  }

  // --- basic support (Section 5.1) -------------------------------------------
  /// Assign B(C) = { (c + i) mod n : 0 <= i <= lambda } for every class and
  /// have those machines join the write groups (runs the simulator until
  /// membership settles).
  void assign_basic_support();
  /// Override B(C) for one class (before or after assign_basic_support).
  void set_basic_support(ClassId cls, std::vector<MachineId> members);
  std::vector<MachineId> basic_support(ClassId cls) const;

  /// Placement-aware alternative to assign_basic_support: choose each
  /// class's B(C) to minimize the expected bridge-crossing cost of its
  /// reads under the topology (paso/placement.hpp), keeping the group
  /// spread across segments for fault tolerance. `weights_per_class[c][m]`
  /// is the expected read volume class c sees from machine m; missing or
  /// empty entries mean uniform readers. Ties go to the machine serving the
  /// fewest classes so far, so a uniform-weight, one-segment call spreads
  /// classes like round-robin. Joins and settles like
  /// assign_basic_support; classes with an explicit override keep it.
  void assign_placement_aware_support(
      const std::vector<std::vector<double>>& weights_per_class = {});

  /// Re-place one class's write group under its *observed* reader
  /// population (each runtime's issued-read counters) and migrate: new
  /// members join first; old members leave only after every join completed,
  /// so the fault-tolerance condition never weakens mid-migration. The
  /// caller settles. No-op when the observed-optimal group equals the
  /// current one.
  void rebalance_placement(ClassId cls);
  /// Reads of `cls` issued per machine so far (the rebalance signal).
  std::vector<double> observed_read_weights(ClassId cls) const;

  // --- fault plane (Section 3.1) ---------------------------------------------
  void crash(MachineId m);
  /// Bring the machine back. Requires the failure detector to have expelled
  /// it already (downtime > detection delay); the machine then re-joins the
  /// write groups of every class whose basic support it belongs to — its
  /// initialization phase. `initialized` fires when every re-join has
  /// completed: per Section 3.1 the machine counts as *faulty until then*.
  void recover(MachineId m, std::function<void()> initialized = {});
  bool is_up(MachineId m) const { return transport_->is_up(m); }
  /// Machines whose network interface is down.
  std::size_t failed_count() const;
  /// Section 3.1's faulty count: down machines plus recovered machines that
  /// are still in their initialization phase.
  std::size_t faulty_count() const;
  bool is_initializing(MachineId m) const {
    return m.value < initializing_.size() && initializing_[m.value];
  }

  /// The fault-tolerance condition of Section 4.1: with k failed servers,
  /// every class keeps more than lambda - k operational write-group members.
  bool fault_tolerance_condition_holds() const;

  /// Every crash this cluster has executed, in time order (crash epochs for
  /// the checker's RunContext).
  const std::vector<semantics::RunContext::CrashEvent>& crash_log() const {
    return crash_log_;
  }
  /// Fault context of the run so far, with hung-op detection armed at the
  /// current virtual time. Pass to semantics::check_history to validate
  /// A1–A3 over a run containing crash/recovery epochs.
  semantics::RunContext run_context() const {
    return semantics::RunContext{crash_log_, transport_->now()};
  }

  // --- synchronous wrappers ---------------------------------------------------
  /// Run the simulator until the operation's callback fires. Returns false /
  /// nullopt if the event queue drained first (e.g. the issuer crashed).
  bool insert_sync(ProcessId process, Tuple fields);
  SearchResponse read_sync(ProcessId process, SearchCriterion sc);
  SearchResponse read_del_sync(ProcessId process, SearchCriterion sc);
  SearchResponse read_blocking_sync(ProcessId process, SearchCriterion sc,
                                    BlockingMode mode, sim::SimTime deadline);

  /// Let the cluster go quiet: drain the simulator's event queue (kSim) or
  /// block until the threaded fabric has no deliveries in flight
  /// (kThreaded; bounded wait, see ThreadedTransport::quiesce).
  void settle();
  /// Run for `duration` virtual time units (kSim) / microseconds (kThreaded).
  void settle_for(sim::SimTime duration);

 private:
  void wire_machine(MachineId m);
  void recover_locked(MachineId m, std::function<void()> initialized);
  /// Issue an async operation and block until its completion fires: pump the
  /// simulator (kSim) or wait on a condition variable (kThreaded). `issue`
  /// receives the completion hook to splice into the operation's callback.
  /// On sharded transports the issue runs under `domain`'s stack shards
  /// (kGlobalDomain = the classic exclusive issue).
  void drive_sync(std::uint64_t domain,
                  const std::function<void(std::function<void()>)>& issue);
  /// The stack-shard domain for an op issued at `issuer` over `classes`:
  /// the issuer's shard plus every candidate class's accumulated domain
  /// mask. Degrades to the global domain whenever narrowing is unsound —
  /// observability on (the tracer's ambient context is single-threaded),
  /// admission queueing (parked ops drain from foreign chains), batching
  /// (a window aggregates ops of any class), more machines than mask bits,
  /// a class whose support was never assigned, or no candidate classes.
  std::uint64_t op_domain(MachineId issuer,
                          const std::vector<ClassId>& classes) const;
  /// Fold `members` into the class's widen-only domain mask.
  void note_support_domain(ClassId cls, const std::vector<MachineId>& members);

  Schema schema_;
  ClusterConfig config_;
  sim::Simulator simulator_;
  std::unique_ptr<obs::Observability> obs_;
  std::unique_ptr<net::Transport> transport_;
  net::BusNetwork* bus_ = nullptr;            ///< transport_ when kSim
  net::ThreadedTransport* threaded_ = nullptr;  ///< transport_ when kThreaded
  net::SocketTransport* socket_ = nullptr;      ///< transport_ when kSocket
  std::unique_ptr<vsync::GroupService> groups_;
  semantics::HistoryRecorder history_;
  /// Owned here, not by the servers: crash_reset wipes a server's memory,
  /// but the machine's disk (and its stats) must survive into recovery.
  std::vector<std::unique_ptr<persist::PersistenceManager>> persistence_;
  std::vector<std::unique_ptr<MemoryServer>> servers_;
  std::vector<std::unique_ptr<PasoRuntime>> runtimes_;
  std::vector<std::vector<MachineId>> basic_support_;
  /// Per-class machine-bit masks, the union of every machine that ever
  /// served the class (basic support assignments and installed views).
  /// Widen-only (fetch_or), so an op issued with an older mask always
  /// overlaps one issued later for the same class — the property the
  /// sharded transports' mutual-exclusion argument rests on. Indexed by
  /// ClassId; 0 = never assigned (ops force the global domain).
  std::unique_ptr<std::atomic<std::uint64_t>[]> class_domain_;
  /// Group name -> class, so the view listener can widen class_domain_.
  std::map<GroupName, ClassId> group_class_;
  std::vector<bool> initializing_;
  std::vector<std::uint64_t> init_epoch_;
  std::vector<semantics::RunContext::CrashEvent> crash_log_;
};

}  // namespace paso
