// ServerMessage instantiation of the generic vsync batching layer.
//
// The batcher coalesces Payloads whose bodies are ServerMessages; the
// combiner here folds them into one BatchMsg (all ops in a batch share a
// route, and the runtime routes per class, so they share a class too), and
// the splitter fans a gathered BatchResponse back out into one
// SearchResponse per op — exactly the std::any shape each op's callback
// would have received had it gone out alone.
//
// Slot conventions (see BatchResponse in messages.hpp):
//   * store op    -> slot is a disengaged SearchResponse; the robust-insert
//                    path treats any arrived response as the ack, matching
//                    the unbatched store whose response body is empty.
//   * read/remove -> slot carries the found object or nullopt.
//   * whole batch abandoned (nullopt from the group layer, e.g. empty view
//     or issuer expelled) -> every op's callback gets nullopt, the same
//     signal an abandoned lone gcast produces.
#pragma once

#include "vsync/batcher.hpp"

namespace paso {

/// Combiner: fold ServerMessage payloads into one BatchMsg payload.
vsync::GcastBatcher::Combiner server_batch_combiner();

/// Splitter: fan a BatchResponse out into per-op SearchResponse anys.
vsync::GcastBatcher::Splitter server_batch_splitter();

}  // namespace paso
