// The memory server (Section 4.2).
//
// One MemoryServer runs on each machine. It manages one local ObjectStore
// per object class whose write group the machine belongs to, and implements
// the three atomic server operations (store_M, mem-read_M, remove_M) as the
// handler of the class group's gcasts. Because gcasts are totally ordered,
// every replica applies the same stores and removals in the same order, so
// "oldest matching object" is identical everywhere — which is what makes
// remove_M deterministic across the write group and read&del return a single
// object system-wide.
//
// The server is also the donor/joiner side of g-join state transfers and the
// holder of read markers for blocking operations.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/transport.hpp"
#include "sim/simulator.hpp"  // sim::SimTime alias (marker TTL bookkeeping)
#include "obs/obs.hpp"
#include "paso/classes.hpp"
#include "paso/messages.hpp"
#include "persist/manager.hpp"
#include "storage/object_store.hpp"
#include "vsync/endpoint.hpp"

namespace paso {

class MemoryServer final : public vsync::GroupEndpoint {
 public:
  /// Fired when this server applies a replicated update. `applied` is false
  /// for removals that found nothing (those cost query work, not update
  /// work). Drives the adaptive counter of Section 5.1.
  using UpdateHook =
      std::function<void(ClassId cls, bool is_store, bool applied)>;
  /// Fired on every view change of a class write group this server is in.
  using ViewHook = std::function<void(ClassId cls, const vsync::View& view)>;
  /// Fired when a stored object matches a live read marker; the runtime
  /// sends the notification to the marker's owner.
  using MarkerHook = std::function<void(MachineId owner,
                                        std::uint64_t marker_id,
                                        const PasoObject& object)>;

  /// Store factory, invoked per class: different classes can use different
  /// structures (hash for dictionary classes, ordered for range classes,
  /// linear for pattern-matching classes — Section 5's three families).
  using ClassStoreFactory =
      std::function<std::unique_ptr<storage::ObjectStore>(ClassId)>;

  MemoryServer(MachineId self, const Schema& schema,
               ClassStoreFactory factory, net::Transport& network);

  // --- vsync::GroupEndpoint -------------------------------------------------
  vsync::GcastResult handle_gcast(const GroupName& group,
                                  const vsync::Payload& message) override;
  vsync::StateBlob capture_state(const GroupName& group) override;
  void install_state(const GroupName& group,
                     const vsync::StateBlob& blob) override;
  void erase_state(const GroupName& group) override;
  void on_view_change(const GroupName& group, const vsync::View& view) override;
  vsync::DurablePosition durable_position(const GroupName& group) override;
  std::optional<std::uint64_t> delta_floor(const GroupName& group) override;
  std::optional<vsync::StateBlob> capture_delta(
      const GroupName& group, const vsync::DurablePosition& position) override;
  bool install_delta(const GroupName& group,
                     const vsync::StateBlob& blob) override;

  // --- durable persistence (optional; see src/persist) ----------------------
  /// Attach the machine's persistence manager (owned by the Cluster: the
  /// disk survives the crashes that erase this server's memory).
  void set_persistence(persist::PersistenceManager* manager) {
    persist_ = manager;
  }
  persist::PersistenceManager* persistence() { return persist_; }

  /// Rebuild class state from local checkpoint + log after a crash. Returns
  /// the total replay cost (disk reads plus re-apply work), already charged
  /// to this machine's ledger row; the caller delays re-joins by it.
  Cost recover_from_disk();

  /// Write a checkpoint of a class's current state now (policy checkpoints
  /// happen automatically on the apply path). Returns the disk cost,
  /// already charged. No-op without enabled persistence or class state.
  Cost checkpoint_class(ClassId cls);

  // --- local fast path (Section 4.3: a member machine serves its own reads
  // locally, msg-cost 0, and charges Q(l) work) -----------------------------
  std::optional<PasoObject> local_find(ClassId cls, const SearchCriterion& sc);

  /// Whether this server currently holds a store for the class.
  bool supports(ClassId cls) const { return classes_.contains(cls.value); }
  /// |live(C)| at this replica.
  std::size_t live_count(ClassId cls) const;
  /// g(l): the state-transfer payload size for the class.
  std::size_t class_state_bytes(ClassId cls) const;

  /// Total objects across all supported classes (diagnostics).
  std::size_t total_objects() const;

  /// Duplicate store/remove deliveries refused by the idempotence layer
  /// (retransmissions and retries that were already applied).
  std::uint64_t duplicates_refused() const { return duplicates_refused_; }

  /// Live (placed, not cancelled, not yet swept) markers for a class.
  std::size_t marker_count(ClassId cls) const;

  /// Markers actually tested against an inserted object (candidates the
  /// marker index could not rule out). The index's analogue of
  /// ObjectStore::match_probes.
  std::uint64_t marker_probes() const { return marker_probes_; }

  /// Marker-sweep timers that fired against a class incarnation that no
  /// longer exists (scheduled before a crash or leave, fired after). They
  /// no-op; this counts them so tests can pin that down.
  std::uint64_t stale_timer_hits() const { return stale_timer_hits_; }

  /// Crash: local memory is erased (Section 3.1), and with it this server's
  /// machine-scoped metrics — measurements are state, and state dies here.
  void crash_reset() {
    classes_.clear();
    if (obs_.metrics != nullptr) obs_.metrics->on_machine_crash(self_);
  }

  void set_obs(obs::Obs o) { obs_ = o; }

  void set_update_hook(UpdateHook hook) { update_hook_ = std::move(hook); }
  void set_view_hook(ViewHook hook) { view_hook_ = std::move(hook); }
  void set_marker_hook(MarkerHook hook) { marker_hook_ = std::move(hook); }

  MachineId self() const { return self_; }

 private:
  struct Marker {
    std::uint64_t marker_id = 0;
    MachineId owner;
    SearchCriterion criterion;
    sim::SimTime expires_at = 0;
  };
  struct ClassState {
    std::unique_ptr<storage::ObjectStore> store;
    std::uint64_t next_age = 0;
    /// Log sequence number of the last applied replicated mutation (stores,
    /// removes and marker ops — everything delivered to the full write
    /// group in total order, so every replica assigns identical lsns).
    /// Maintained even without persistence: it costs nothing and keeps
    /// state-transfer blobs position-stamped.
    std::uint64_t lsn = 0;
    /// Distinguishes this lifetime of the class from earlier ones on the
    /// same machine. Timers capture it; a timer whose incarnation no longer
    /// matches fired across a crash/leave boundary and must not touch the
    /// reborn class.
    std::uint64_t incarnation = 0;
    std::vector<Marker> markers;
    /// Marker index: markers whose criterion Exact-constrains some field are
    /// bucketed by (field, value hash); the rest go to the catch-all. An
    /// insert then only tests markers its field values can possibly satisfy.
    /// Rebuilt lazily — any mutation of `markers` just flips the dirty bit.
    std::unordered_map<std::size_t,
                       std::unordered_map<std::size_t, std::vector<std::size_t>>>
        marker_buckets;
    std::vector<std::size_t> marker_catch_all;
    bool marker_index_dirty = true;
    /// Every identity ever stored here — including since-removed ones — so a
    /// retransmitted store(o) neither duplicates a live object nor
    /// resurrects a removed one (A2: at-most-one insert per identity).
    std::unordered_set<ObjectId> applied_inserts;
    /// Remove decisions by operation token, in insertion order for eviction.
    std::unordered_map<std::uint64_t, SearchResponse> remove_cache;
    std::deque<std::uint64_t> remove_cache_order;
  };
  /// What travels in a state-transfer blob. The dedup state rides along:
  /// a joiner must refuse the same duplicates its donor would.
  struct ClassSnapshot {
    std::vector<storage::StoredObject> objects;
    std::uint64_t next_age = 0;
    std::uint64_t lsn = 0;
    std::vector<Marker> markers;
    std::unordered_set<ObjectId> applied_inserts;
    std::unordered_map<std::uint64_t, SearchResponse> remove_cache;
    std::deque<std::uint64_t> remove_cache_order;
  };
  /// A delta state-transfer blob: the donor's log suffix past the joiner's
  /// durable position, plus the donor's live markers (transient state that
  /// never reaches disk, so it always travels whole). The dedup tables need
  /// no copy — replaying the suffix regrows them deterministically.
  struct DeltaSnapshot {
    std::uint64_t from_lsn = 0;
    std::uint64_t to_lsn = 0;
    std::uint64_t next_age = 0;  ///< donor's, to cross-check the replay
    std::vector<persist::WalRecord> records;
    std::vector<Marker> markers;
  };

  /// Cap on cached remove decisions per class (FIFO eviction). Retries only
  /// ever replay recent tokens, so a small bound suffices.
  static constexpr std::size_t kRemoveCacheCap = 4096;

  /// How an operation is being applied. Replays re-execute the exact
  /// delivered prefix, so they must neither fire hooks (the notifications
  /// already happened in a previous life) nor re-log to the WAL they came
  /// from; delta installs re-log (the joiner's own disk must catch up) but
  /// stay silent otherwise.
  enum class ApplyMode { kLive, kReplay, kDeltaInstall };

  ClassState& state_of(ClassId cls);
  std::optional<ClassId> class_of_group(const GroupName& group) const;

  /// Advance the class lsn for one applied mutation and, when persistence
  /// is on, append it to the WAL + run the checkpoint policy. Called for
  /// every store / remove / marker op in every mode (replay included — the
  /// lsn must track the stream), before the op mutates state.
  void note_op(ClassId cls, ClassState& state, const ServerMessage& op,
               Cost& processing);
  /// Apply one WAL-recorded operation during replay or delta install.
  void apply_replayed(ClassId cls, ClassState& state, const ServerMessage& op,
                      Cost& processing);
  /// Snapshot the class's current in-memory state as a checkpoint image.
  persist::CheckpointImage checkpoint_image(ClassState& state) const;
  /// Run the checkpoint policy (bytes-since-last / age) for the class,
  /// folding any checkpoint's disk cost into `processing`.
  void maybe_checkpoint(ClassId cls, ClassState& state, Cost& processing);
  /// Schema signature lookup for the wire decoder.
  std::vector<FieldType> signature_of(ClassId cls) const;
  /// Record a kPersist span against the active trace context.
  void persist_span(const char* what, double value);

  // Per-operation apply helpers: one replicated operation against one class,
  // accumulating server time into `processing`. handle_gcast dispatches lone
  // messages straight to these; a BatchMsg loops over them, so a batched op
  // is byte-for-byte the same state transition as an unbatched one.
  void apply_store(ClassId cls, ClassState& state, const StoreMsg& msg,
                   Cost& processing);
  SearchResponse apply_read(ClassState& state, const MemReadMsg& msg,
                            Cost& processing);
  SearchResponse apply_remove(ClassId cls, ClassState& state,
                              const RemoveMsg& msg, Cost& processing);

  void fire_markers(ClassState& state, const PasoObject& object);
  void rebuild_marker_index(ClassState& state);
  /// Drop expired markers (and dirty the index if any went). Called outside
  /// the insert path — on marker placement/cancellation and state capture —
  /// so a class with markers but no inserts doesn't hoard dead ones.
  void sweep_expired_markers(ClassState& state);
  /// Schedule a sweep just past a marker's expiry, so it is reclaimed even
  /// when no further traffic touches the class (the sweep used to piggyback
  /// on place/cancel/capture only, leaving a quiet class to hoard the dead
  /// marker forever — e.g. when the marker's owner crashed).
  void schedule_marker_sweep(ClassId cls, sim::SimTime expires_at);

  /// Per-class metric handles, resolved once and cached; registry entries
  /// survive crashes (values are zeroed, registrations kept), so the
  /// pointers stay valid across crash/recover cycles.
  struct ClassMetrics {
    obs::Counter* stores = nullptr;
    obs::Counter* reads = nullptr;
    obs::Counter* removes = nullptr;
    obs::Counter* probes = nullptr;
    obs::Gauge* markers = nullptr;
  };
  ClassMetrics* metrics_of(ClassId cls);

  MachineId self_;
  const Schema& schema_;
  ClassStoreFactory factory_;
  net::Transport& network_;
  obs::Obs obs_;
  std::unordered_map<std::uint32_t, ClassMetrics> class_metrics_;
  std::unordered_map<std::uint32_t, ClassState> classes_;
  std::unordered_map<GroupName, ClassId> group_to_class_;
  UpdateHook update_hook_;
  ViewHook view_hook_;
  MarkerHook marker_hook_;
  persist::PersistenceManager* persist_ = nullptr;
  ApplyMode apply_mode_ = ApplyMode::kLive;
  std::uint64_t next_incarnation_ = 1;
  std::uint64_t stale_timer_hits_ = 0;
  std::uint64_t duplicates_refused_ = 0;
  std::uint64_t marker_probes_ = 0;
};

}  // namespace paso
