#include "paso/fault_injector.hpp"

#include <cmath>

namespace paso {

FaultInjector::FaultInjector(Cluster& cluster, Options options)
    : cluster_(cluster), options_(options), rng_(options.seed) {
  if (options_.max_down == SIZE_MAX) {
    options_.max_down = cluster_.lambda();
  }
  PASO_REQUIRE(options_.max_down <= cluster_.lambda(),
               "injector would exceed the lambda fault model");
}

sim::SimTime FaultInjector::exponential(sim::SimTime mean) {
  // Inverse CDF; clamp the uniform away from 0 to avoid infinities.
  const double u = std::max(rng_.uniform01(), 1e-12);
  return -mean * std::log(u);
}

void FaultInjector::start() {
  if (running_) return;
  running_ = true;
  schedule_next_crash();
}

void FaultInjector::schedule_next_crash() {
  if (!running_) return;
  cluster_.simulator().schedule_after(
      exponential(options_.mean_time_between_failures),
      [this] { attempt_crash(); });
}

void FaultInjector::attempt_crash() {
  if (!running_) return;
  if (down_.size() < options_.max_down) {
    // Pick an up, non-immune machine uniformly.
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t m = 0; m < cluster_.machine_count(); ++m) {
      if (options_.immune.contains(m) || down_.contains(m)) continue;
      if (!cluster_.is_up(MachineId{m})) continue;
      candidates.push_back(m);
    }
    if (!candidates.empty()) {
      const std::uint32_t victim = rng_.pick(candidates);
      cluster_.crash(MachineId{victim});
      down_.insert(victim);
      ++crashes_;
      // Downtime floor: detection must complete before re-joining, and the
      // paper's initialization phase is bounded below.
      const sim::SimTime floor =
          cluster_.groups().options().failure_detection_delay * 2 + 1;
      const sim::SimTime downtime = floor + exponential(options_.mean_repair_time);
      cluster_.simulator().schedule_after(
          downtime, [this, victim] { recover(victim); });
    }
  }
  schedule_next_crash();
}

void FaultInjector::recover(std::uint32_t machine) {
  if (!down_.contains(machine)) return;
  // The machine stays "faulty" (in down_, counted against max_down) until
  // its initialization phase completes — Section 3.1's accounting.
  cluster_.recover(MachineId{machine}, [this, machine] {
    down_.erase(machine);
    ++recoveries_;
  });
}

}  // namespace paso
