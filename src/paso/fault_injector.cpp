#include "paso/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace paso {

FaultInjector::FaultInjector(Cluster& cluster, Options options)
    : cluster_(cluster), options_(options), rng_(options.seed) {
  if (options_.max_down == SIZE_MAX) {
    options_.max_down = cluster_.lambda();
  }
  PASO_REQUIRE(options_.max_down <= cluster_.lambda(),
               "injector would exceed the lambda fault model");
}

sim::SimTime FaultInjector::exponential(sim::SimTime mean) {
  // Inverse CDF; clamp the uniform away from 0 to avoid infinities.
  const double u = std::max(rng_.uniform01(), 1e-12);
  return -mean * std::log(u);
}

void FaultInjector::start() {
  if (running_) return;
  running_ = true;
  schedule_next_crash();
}

void FaultInjector::schedule_next_crash() {
  if (!running_) return;
  cluster_.simulator().schedule_after(
      exponential(options_.mean_time_between_failures),
      [this] { attempt_crash(); });
}

void FaultInjector::attempt_crash() {
  if (!running_) return;
  if (down_.size() < options_.max_down) {
    // Pick an up, non-immune machine uniformly.
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t m = 0; m < cluster_.machine_count(); ++m) {
      if (options_.immune.contains(m) || down_.contains(m)) continue;
      if (!cluster_.is_up(MachineId{m})) continue;
      candidates.push_back(m);
    }
    if (!candidates.empty()) {
      const std::uint32_t victim = rng_.pick(candidates);
      cluster_.crash(MachineId{victim});
      down_.insert(victim);
      ++crashes_;
      // Downtime floor: detection must complete before re-joining, and the
      // paper's initialization phase is bounded below.
      const sim::SimTime floor =
          cluster_.groups().options().failure_detection_delay * 2 + 1;
      const sim::SimTime downtime = floor + exponential(options_.mean_repair_time);
      cluster_.simulator().schedule_after(
          downtime, [this, victim] { recover(victim); });
    }
  }
  schedule_next_crash();
}

void FaultInjector::recover(std::uint32_t machine) {
  if (!down_.contains(machine)) return;
  // The machine stays "faulty" (in down_, counted against max_down) until
  // its initialization phase completes — Section 3.1's accounting.
  cluster_.recover(MachineId{machine}, [this, machine] {
    down_.erase(machine);
    ++recoveries_;
  });
}

// ---------------------------------------------------------------------------
// ChaosSchedule

namespace {

/// Fixed-precision time formatting so timelines compare byte for byte.
std::string fmt_time(sim::SimTime t) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << t;
  return os.str();
}

std::string describe_event(const ChaosEvent& ev) {
  std::ostringstream os;
  os << "t=" << fmt_time(ev.at) << " " << chaos_kind_name(ev.kind)
     << (ev.kind == ChaosEvent::Kind::kBridgePartition ? " b" : " m")
     << ev.machine;
  if (ev.kind == ChaosEvent::Kind::kDrop ||
      ev.kind == ChaosEvent::Kind::kDelay ||
      ev.kind == ChaosEvent::Kind::kBridgePartition) {
    os << " for " << fmt_time(ev.duration);
  }
  if (ev.kind == ChaosEvent::Kind::kDelay) {
    os << " +" << fmt_time(ev.extra_delay);
  }
  return os.str();
}

}  // namespace

const char* chaos_kind_name(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kCrash:
      return "crash";
    case ChaosEvent::Kind::kRecover:
      return "recover";
    case ChaosEvent::Kind::kDelay:
      return "delay";
    case ChaosEvent::Kind::kDrop:
      return "drop";
    case ChaosEvent::Kind::kTornTail:
      return "torn-tail";
    case ChaosEvent::Kind::kCorruptRecord:
      return "corrupt-record";
    case ChaosEvent::Kind::kLostFsync:
      return "lost-fsync";
    case ChaosEvent::Kind::kBridgePartition:
      return "bridge-partition";
  }
  return "?";
}

ChaosSchedule ChaosSchedule::generate(std::uint64_t seed, std::size_t machines,
                                      GenOptions options) {
  PASO_REQUIRE(machines > 0, "chaos schedule needs machines");
  PASO_REQUIRE(options.horizon > 0, "chaos schedule needs a positive horizon");
  ChaosSchedule schedule;
  schedule.horizon = options.horizon;
  Rng rng(seed);

  std::vector<std::uint32_t> candidates;
  for (std::uint32_t m = 0; m < machines; ++m) {
    if (!options.immune.contains(m)) candidates.push_back(m);
  }
  if (candidates.empty()) return schedule;

  // Crash/recover pairs. Crashes land in the first 70% of the horizon so
  // the recovery — and the state-transfer traffic it triggers — still falls
  // inside the run; the downtime floor gives failure detection time to
  // expel the machine before it returns with erased memory.
  const sim::SimTime floor = options.detection_delay * 2 + 1;
  for (std::size_t i = 0; i < options.crash_count; ++i) {
    ChaosEvent crash;
    crash.kind = ChaosEvent::Kind::kCrash;
    crash.machine = rng.pick(candidates);
    crash.at = rng.uniform01() * options.horizon * 0.7;
    ChaosEvent recover;
    recover.kind = ChaosEvent::Kind::kRecover;
    recover.machine = crash.machine;
    recover.at =
        crash.at + floor + rng.uniform01() * options.max_extra_downtime;
    schedule.events.push_back(crash);
    schedule.events.push_back(recover);
  }

  // Bounded disturbance windows: drops first, then delays, so a given seed
  // assigns the same windows regardless of how the caller tweaks counts of
  // the *other* kind only when counts match — simplicity over splicing.
  for (std::size_t i = 0; i < options.drop_count + options.delay_count; ++i) {
    const bool drop = i < options.drop_count;
    ChaosEvent ev;
    ev.kind = drop ? ChaosEvent::Kind::kDrop : ChaosEvent::Kind::kDelay;
    ev.machine = rng.pick(candidates);
    ev.at = rng.uniform01() * options.horizon * 0.8;
    ev.duration =
        25 + rng.uniform01() * std::max<sim::SimTime>(0, options.max_window - 25);
    if (!drop) {
      ev.extra_delay = 5 + rng.uniform01() * options.max_extra_delay;
    }
    schedule.events.push_back(ev);
  }

  // Disk faults last: their draws extend the stream past everything above,
  // so (seed, machines, pre-existing options) keep producing the exact
  // timeline they always did when disk_fault_count is zero.
  for (std::size_t i = 0; i < options.disk_fault_count; ++i) {
    ChaosEvent ev;
    const double kind_draw = rng.uniform01();
    ev.kind = kind_draw < 1.0 / 3   ? ChaosEvent::Kind::kTornTail
              : kind_draw < 2.0 / 3 ? ChaosEvent::Kind::kCorruptRecord
                                    : ChaosEvent::Kind::kLostFsync;
    ev.machine = rng.pick(candidates);
    ev.at = rng.uniform01() * options.horizon * 0.8;
    ev.salt = rng.uniform(0, std::numeric_limits<std::uint32_t>::max());
    schedule.events.push_back(ev);
  }

  // Bridge partitions last of all — same stream-extension contract as the
  // disk faults above, so pre-partition seeds replay unchanged.
  if (options.bridges > 0) {
    for (std::size_t i = 0; i < options.bridge_partition_count; ++i) {
      ChaosEvent ev;
      ev.kind = ChaosEvent::Kind::kBridgePartition;
      ev.machine = static_cast<std::uint32_t>(
          rng.uniform(0, static_cast<std::uint32_t>(options.bridges - 1)));
      ev.at = rng.uniform01() * options.horizon * 0.8;
      ev.duration = 25 + rng.uniform01() *
                             std::max<sim::SimTime>(0, options.max_window - 25);
      schedule.events.push_back(ev);
    }
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

std::string ChaosSchedule::to_string() const {
  std::ostringstream os;
  for (const ChaosEvent& ev : events) os << describe_event(ev) << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// ChaosEngine

ChaosEngine::ChaosEngine(Cluster& cluster, ChaosSchedule schedule)
    : cluster_(cluster), schedule_(std::move(schedule)) {
  const bool has_drop =
      std::any_of(schedule_.events.begin(), schedule_.events.end(),
                  [](const ChaosEvent& ev) {
                    return ev.kind == ChaosEvent::Kind::kDrop;
                  });
  // Dropped messages are lost forever at the bus; without the vsync layer's
  // retransmission a dropped gcast would strand its operation.
  PASO_REQUIRE(!has_drop ||
                   cluster_.groups().options().retransmit_timeout < sim::kNever,
               "drop windows need vsync retransmission "
               "(GroupService::Options::retransmit_timeout)");
}

void ChaosEngine::start() {
  if (started_) return;
  started_ = true;
  const sim::SimTime now = cluster_.simulator().now();
  for (std::size_t i = 0; i < schedule_.events.size(); ++i) {
    cluster_.simulator().schedule_at(std::max(now, schedule_.events[i].at),
                                     [this, i] { apply(i); });
  }
}

void ChaosEngine::note(sim::SimTime at, const std::string& line) {
  log_.push_back("t=" + fmt_time(at) + " " + line);
}

void ChaosEngine::apply(std::size_t index) {
  const ChaosEvent& ev = schedule_.events[index];
  const MachineId machine{ev.machine};
  const std::string who = "m" + std::to_string(ev.machine);
  const sim::SimTime now = cluster_.simulator().now();
  switch (ev.kind) {
    case ChaosEvent::Kind::kCrash: {
      if (!cluster_.is_up(machine)) {
        ++skipped_;
        note(now, "skip crash " + who + " (already down)");
        return;
      }
      if (cluster_.faulty_count() >= cluster_.lambda()) {
        ++skipped_;
        note(now, "skip crash " + who + " (fault budget)");
        return;
      }
      // Never take a group's last operational replica: that leaves the
      // lambda fault model entirely and legacy (non-robust) operations
      // could block forever with no group to answer them.
      for (const GroupName& group : cluster_.groups().groups_of(machine)) {
        std::size_t survivors = 0;
        for (const MachineId member :
             cluster_.groups().view_of(group).members) {
          if (member != machine && cluster_.is_up(member)) ++survivors;
        }
        if (survivors == 0) {
          ++skipped_;
          note(now, "skip crash " + who + " (last replica of " + group + ")");
          return;
        }
      }
      cluster_.crash(machine);
      ++crashes_;
      note(now, "crash " + who);
      return;
    }
    case ChaosEvent::Kind::kRecover:
      fire_recover(ev.machine);
      return;
    case ChaosEvent::Kind::kDrop:
      cluster_.network().set_drop_window(machine, now + ev.duration);
      ++windows_;
      note(now, "drop to " + who + " until " + fmt_time(now + ev.duration));
      return;
    case ChaosEvent::Kind::kDelay:
      cluster_.network().set_delay_window(machine, now + ev.duration,
                                          ev.extra_delay);
      ++windows_;
      note(now, "delay to " + who + " until " + fmt_time(now + ev.duration) +
                    " +" + fmt_time(ev.extra_delay));
      return;
    case ChaosEvent::Kind::kTornTail:
    case ChaosEvent::Kind::kCorruptRecord:
    case ChaosEvent::Kind::kLostFsync: {
      const char* name = chaos_kind_name(ev.kind);
      if (!cluster_.persistence_enabled()) {
        ++skipped_;
        note(now, std::string("skip ") + name + " " + who +
                      " (persistence off)");
        return;
      }
      using FaultKind = persist::PersistenceManager::FaultKind;
      const FaultKind fault =
          ev.kind == ChaosEvent::Kind::kTornTail ? FaultKind::kTornTail
          : ev.kind == ChaosEvent::Kind::kCorruptRecord
              ? FaultKind::kCorruptRecord
              : FaultKind::kLostFsync;
      const auto damage =
          cluster_.persistence(machine).inject_fault(fault, ev.salt);
      if (!damage) {
        ++skipped_;
        note(now,
             std::string("skip ") + name + " " + who + " (nothing durable)");
        return;
      }
      ++disk_faults_;
      note(now, std::string(name) + " " + who + " (" + *damage + ")");
      return;
    }
    case ChaosEvent::Kind::kBridgePartition: {
      // `machine` carries the bridge index for this kind.
      const std::string which = "b" + std::to_string(ev.machine);
      if (ev.machine >= cluster_.network().bridge_count()) {
        ++skipped_;
        note(now, "skip bridge-partition " + which + " (no such bridge)");
        return;
      }
      cluster_.network().set_bridge_partition(ev.machine, now + ev.duration);
      ++partitions_;
      note(now, "bridge-partition " + which + " until " +
                    fmt_time(now + ev.duration));
      return;
    }
  }
}

void ChaosEngine::fire_recover(std::uint32_t m) {
  const MachineId machine{m};
  const std::string who = "m" + std::to_string(m);
  const sim::SimTime now = cluster_.simulator().now();
  if (cluster_.is_up(machine)) {
    ++skipped_;
    note(now, "skip recover " + who + " (up)");
    return;
  }
  if (!cluster_.groups().groups_of(machine).empty()) {
    // Failure detection has not expelled the machine from all its groups
    // yet; recovering now would resurrect erased memory inside a live view.
    ++deferred_;
    note(now, "defer recover " + who);
    cluster_.simulator().schedule_after(
        cluster_.groups().options().failure_detection_delay + 1,
        [this, m] { fire_recover(m); });
    return;
  }
  ++recoveries_;
  note(now, "recover " + who);
  cluster_.recover(machine, [this, m] {
    note(cluster_.simulator().now(), "init-done m" + std::to_string(m));
  });
}

std::string ChaosEngine::timeline() const {
  std::string out;
  for (const std::string& line : log_) {
    out += line;
    out += "\n";
  }
  return out;
}

}  // namespace paso
