#include "paso/classes.hpp"

#include <set>
#include <sstream>

namespace paso {

namespace {

struct ValueHasher {
  std::size_t operator()(const Value& v) const {
    return std::visit(
        [](const auto& x) -> std::size_t {
          using X = std::decay_t<decltype(x)>;
          return std::hash<X>{}(x);
        },
        v);
  }
};

}  // namespace

Schema::Schema(std::vector<ClassSpec> specs) : specs_(std::move(specs)) {
  PASO_REQUIRE(!specs_.empty(), "schema needs at least one class spec");
  for (const ClassSpec& spec : specs_) {
    PASO_REQUIRE(spec.partitions >= 1, "spec needs >= 1 partition");
    PASO_REQUIRE(spec.partitions == 1 || spec.key_field < spec.signature.size(),
                 "key field out of range");
    first_class_of_spec_.push_back(class_count_);
    for (std::size_t p = 0; p < spec.partitions; ++p) {
      std::ostringstream os;
      os << "wg/" << spec.name << "/" << p;
      group_names_.push_back(os.str());
    }
    class_count_ += spec.partitions;
  }
}

bool Schema::signature_matches(const ClassSpec& spec,
                               const Tuple& tuple) const {
  if (tuple.size() != spec.signature.size()) return false;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (type_of(tuple[i]) != spec.signature[i]) return false;
  }
  return true;
}

bool Schema::signature_admits(const ClassSpec& spec,
                              const SearchCriterion& sc) const {
  if (sc.fields.size() != spec.signature.size()) return false;
  for (std::size_t i = 0; i < sc.fields.size(); ++i) {
    if (!pattern_admits_type(sc.fields[i], spec.signature[i])) return false;
  }
  return true;
}

std::size_t Schema::partition_of(const ClassSpec& spec,
                                 const Value& key) const {
  if (spec.partitions == 1) return 0;
  return ValueHasher{}(key) % spec.partitions;
}

std::optional<ClassId> Schema::classify(const Tuple& tuple) const {
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const ClassSpec& spec = specs_[s];
    if (!signature_matches(spec, tuple)) continue;
    const std::size_t partition =
        spec.partitions == 1 ? 0 : partition_of(spec, tuple[spec.key_field]);
    return ClassId{
        static_cast<std::uint32_t>(first_class_of_spec_[s] + partition)};
  }
  return std::nullopt;
}

std::vector<ClassId> Schema::candidate_classes(
    const SearchCriterion& sc) const {
  std::vector<ClassId> candidates;
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    const ClassSpec& spec = specs_[s];
    if (!signature_admits(spec, sc)) continue;
    if (spec.partitions == 1) {
      candidates.push_back(
          ClassId{static_cast<std::uint32_t>(first_class_of_spec_[s])});
      continue;
    }
    // An exact pattern on the key field pins the partition; an explicit
    // value set (OneOf) pins the union of its values' partitions; anything
    // else could match objects in every partition.
    const FieldPattern& key_pattern = sc.fields[spec.key_field];
    if (const auto* exact = std::get_if<Exact>(&key_pattern)) {
      const std::size_t partition = partition_of(spec, exact->value);
      candidates.push_back(ClassId{
          static_cast<std::uint32_t>(first_class_of_spec_[s] + partition)});
    } else if (const auto* one_of = std::get_if<OneOf>(&key_pattern)) {
      std::set<std::size_t> partitions;
      for (const Value& v : one_of->values) {
        if (type_of(v) == spec.signature[spec.key_field]) {
          partitions.insert(partition_of(spec, v));
        }
      }
      for (const std::size_t p : partitions) {
        candidates.push_back(ClassId{
            static_cast<std::uint32_t>(first_class_of_spec_[s] + p)});
      }
    } else {
      for (std::size_t p = 0; p < spec.partitions; ++p) {
        candidates.push_back(ClassId{
            static_cast<std::uint32_t>(first_class_of_spec_[s] + p)});
      }
    }
  }
  return candidates;
}

const std::string& Schema::group_name(ClassId id) const {
  PASO_REQUIRE(id.value < group_names_.size(), "unknown class id");
  return group_names_[id.value];
}

std::pair<std::size_t, std::size_t> Schema::locate(ClassId id) const {
  PASO_REQUIRE(id.value < class_count_, "unknown class id");
  std::size_t spec_index = 0;
  while (spec_index + 1 < first_class_of_spec_.size() &&
         first_class_of_spec_[spec_index + 1] <= id.value) {
    ++spec_index;
  }
  return {spec_index, id.value - first_class_of_spec_[spec_index]};
}

}  // namespace paso
