// Distributed coordination patterns on top of the PASO memory.
//
// The paper motivates PASO memories as "coordination languages" (Section 1
// cites their use from C, Scheme, Prolog, Modula-2, ...). This library is
// the downstream-user demonstration: classic Linda coordination structures —
// locks, semaphores, reusable barriers, atomic counters, FIFO queues —
// built *purely* on the public primitives (insert / read / read&del and
// their blocking forms), inheriting the memory's fault tolerance: every
// token and ticket below survives up to lambda machine crashes.
//
// All structures share one object class family ("coord" tuples of shape
// (text name, int a, int b, text payload)), hash-partitioned by name so
// unrelated structures live in different write groups.
//
// Operations are asynchronous (callback-based) like the runtime itself;
// each takes the calling ProcessId. Mutual exclusion and atomicity come
// from read&del's system-wide exactly-once guarantee (axiom A2): taking a
// token is the atomic step everything else is built from.
#pragma once

#include <functional>
#include <string>

#include "paso/cluster.hpp"

namespace paso::coord {

/// The class specs coordination structures need; append to the application
/// schema before building the Cluster.
std::vector<ClassSpec> schema_specs(std::size_t partitions = 4);

/// A mutual-exclusion lock: one token tuple; acquire = blocking read&del,
/// release = insert. Crash-safe in the sense that the token lives in the
/// replicated memory — but a holder that dies takes the token with it, as
/// in any token-based scheme (recover with `force_release`).
class DistributedLock {
 public:
  DistributedLock(Cluster& cluster, std::string name)
      : cluster_(cluster), name_(std::move(name)) {}

  /// Create the lock's token (call once, from anywhere).
  void create(ProcessId process);

  /// Acquire: fires `acquired(true)` with the lock held, or
  /// `acquired(false)` if `deadline` passed first.
  void acquire(ProcessId process, std::function<void(bool)> acquired,
               sim::SimTime deadline = PasoRuntime::kNoDeadline);

  /// Release a held lock.
  void release(ProcessId process);

  /// Re-mint the token after a holder died. Idempotent only if callers
  /// coordinate; meant for an administrative recovery path.
  void force_release(ProcessId process) { release(process); }

  const std::string& name() const { return name_; }

 private:
  Cluster& cluster_;
  std::string name_;
};

/// Counting semaphore: `permits` interchangeable tokens.
class Semaphore {
 public:
  Semaphore(Cluster& cluster, std::string name)
      : cluster_(cluster), name_(std::move(name)) {}

  void create(ProcessId process, std::size_t permits);
  void acquire(ProcessId process, std::function<void(bool)> acquired,
               sim::SimTime deadline = PasoRuntime::kNoDeadline);
  void release(ProcessId process);

 private:
  Cluster& cluster_;
  std::string name_;
};

/// Reusable n-party barrier. Each generation g completes when `parties`
/// processes have arrived; arrival is an atomic counter bump (take the
/// count tuple, re-insert incremented), and the last arriver publishes a
/// release tuple that waiting parties blocking-read.
class Barrier {
 public:
  Barrier(Cluster& cluster, std::string name, std::size_t parties)
      : cluster_(cluster), name_(std::move(name)), parties_(parties) {}

  void create(ProcessId process);

  /// Arrive and wait for the current generation to complete; `released`
  /// fires once all parties of this generation arrived.
  void arrive(ProcessId process, std::function<void()> released);

 private:
  Cluster& cluster_;
  std::string name_;
  std::size_t parties_;
};

/// Atomic fetch-and-add counter.
class AtomicCounter {
 public:
  AtomicCounter(Cluster& cluster, std::string name)
      : cluster_(cluster), name_(std::move(name)) {}

  void create(ProcessId process, std::int64_t initial = 0);

  /// Atomically add `delta`; `done` receives the *previous* value.
  void fetch_add(ProcessId process, std::int64_t delta,
                 std::function<void(std::int64_t)> done);

  /// Non-destructive read of the current value.
  void read(ProcessId process, std::function<void(std::int64_t)> done);

 private:
  Cluster& cluster_;
  std::string name_;
};

/// FIFO queue of text payloads with total order across all producers and
/// consumers: producers take a tail ticket to obtain their sequence number,
/// consumers take the head ticket and then wait for exactly that item.
class TupleQueue {
 public:
  TupleQueue(Cluster& cluster, std::string name)
      : cluster_(cluster), name_(std::move(name)) {}

  void create(ProcessId process);

  void push(ProcessId process, std::string payload,
            std::function<void()> done = {});

  /// Pop the next item in FIFO order; fires `popped(payload)` or
  /// `popped(nullopt)` on deadline.
  void pop(ProcessId process,
           std::function<void(std::optional<std::string>)> popped,
           sim::SimTime deadline = PasoRuntime::kNoDeadline);

 private:
  Cluster& cluster_;
  std::string name_;
};

}  // namespace paso::coord
