#include "coord/coord.hpp"

#include <utility>

namespace paso::coord {

namespace {

/// All coordination tuples share this shape: (name, a, b, payload).
Tuple coord_tuple(const std::string& name, std::int64_t a, std::int64_t b,
                  const std::string& payload = "") {
  return {Value{name}, Value{a}, Value{b}, Value{payload}};
}

SearchCriterion by_name(const std::string& name) {
  return criterion(Exact{Value{name}}, TypedAny{FieldType::kInt},
                   TypedAny{FieldType::kInt}, TypedAny{FieldType::kText});
}

SearchCriterion by_name_a(const std::string& name, std::int64_t a) {
  return criterion(Exact{Value{name}}, Exact{Value{a}},
                   TypedAny{FieldType::kInt}, TypedAny{FieldType::kText});
}

}  // namespace

std::vector<ClassSpec> schema_specs(std::size_t partitions) {
  return {ClassSpec{
      "coord",
      {FieldType::kText, FieldType::kInt, FieldType::kInt, FieldType::kText},
      0,
      partitions}};
}

// --- DistributedLock ---------------------------------------------------------

void DistributedLock::create(ProcessId process) {
  cluster_.runtime(process.machine)
      .insert(process, coord_tuple("lock/" + name_, 0, 0), {});
}

void DistributedLock::acquire(ProcessId process,
                              std::function<void(bool)> acquired,
                              sim::SimTime deadline) {
  cluster_.runtime(process.machine)
      .read_del_blocking(
          process, by_name("lock/" + name_),
          [acquired = std::move(acquired)](SearchResponse token) {
            if (acquired) acquired(token.has_value());
          },
          BlockingMode::kMarker, deadline);
}

void DistributedLock::release(ProcessId process) {
  cluster_.runtime(process.machine)
      .insert(process, coord_tuple("lock/" + name_, 0, 0), {});
}

// --- Semaphore ---------------------------------------------------------------

void Semaphore::create(ProcessId process, std::size_t permits) {
  for (std::size_t i = 0; i < permits; ++i) {
    cluster_.runtime(process.machine)
        .insert(process, coord_tuple("sem/" + name_, 0, 0), {});
  }
}

void Semaphore::acquire(ProcessId process, std::function<void(bool)> acquired,
                        sim::SimTime deadline) {
  cluster_.runtime(process.machine)
      .read_del_blocking(
          process, by_name("sem/" + name_),
          [acquired = std::move(acquired)](SearchResponse token) {
            if (acquired) acquired(token.has_value());
          },
          BlockingMode::kMarker, deadline);
}

void Semaphore::release(ProcessId process) {
  cluster_.runtime(process.machine)
      .insert(process, coord_tuple("sem/" + name_, 0, 0), {});
}

// --- Barrier -----------------------------------------------------------------

void Barrier::create(ProcessId process) {
  // Count tuple: ("bar/<name>", arrived-so-far, generation).
  cluster_.runtime(process.machine)
      .insert(process, coord_tuple("bar/" + name_, 0, 0), {});
}

void Barrier::arrive(ProcessId process, std::function<void()> released) {
  PasoRuntime& runtime = cluster_.runtime(process.machine);
  const std::string count_name = "bar/" + name_;
  const std::string go_name = "bar/" + name_ + "/go";
  runtime.read_del_blocking(
      process, by_name(count_name),
      [this, process, released = std::move(released), count_name,
       go_name](SearchResponse count) mutable {
        PASO_REQUIRE(count.has_value(), "barrier count tuple lost");
        const auto arrived = std::get<std::int64_t>(count->fields[1]) + 1;
        const auto generation = std::get<std::int64_t>(count->fields[2]);
        PasoRuntime& runtime = cluster_.runtime(process.machine);
        if (arrived == static_cast<std::int64_t>(parties_)) {
          // Last arriver: open the gate for this generation, arm the next
          // one, and garbage-collect the previous generation's gate.
          runtime.insert(process, coord_tuple(go_name, generation, 0), {});
          runtime.insert(process, coord_tuple(count_name, 0, generation + 1),
                         {});
          if (generation > 0) {
            runtime.read_del(process, by_name_a(go_name, generation - 1),
                             [](SearchResponse) {});
          }
          if (released) released();
          return;
        }
        runtime.insert(process, coord_tuple(count_name, arrived, generation),
                       {});
        // Wait (non-destructively) for this generation's gate.
        runtime.read_blocking(
            process, by_name_a(go_name, generation),
            [released = std::move(released)](SearchResponse gate) {
              PASO_REQUIRE(gate.has_value(), "barrier gate wait failed");
              if (released) released();
            },
            BlockingMode::kMarker);
      },
      BlockingMode::kMarker);
}

// --- AtomicCounter -------------------------------------------------------------

void AtomicCounter::create(ProcessId process, std::int64_t initial) {
  cluster_.runtime(process.machine)
      .insert(process, coord_tuple("ctr/" + name_, initial, 0), {});
}

void AtomicCounter::fetch_add(ProcessId process, std::int64_t delta,
                              std::function<void(std::int64_t)> done) {
  PasoRuntime& runtime = cluster_.runtime(process.machine);
  runtime.read_del_blocking(
      process, by_name("ctr/" + name_),
      [this, process, delta, done = std::move(done)](SearchResponse tuple) {
        PASO_REQUIRE(tuple.has_value(), "counter tuple lost");
        const auto old = std::get<std::int64_t>(tuple->fields[1]);
        // Completion is signalled only once the re-inserted tuple is
        // replicated: a fetch_add that "finished" must be visible.
        cluster_.runtime(process.machine)
            .insert(process, coord_tuple("ctr/" + name_, old + delta, 0),
                    [done = std::move(done), old] {
                      if (done) done(old);
                    });
      },
      BlockingMode::kMarker);
}

void AtomicCounter::read(ProcessId process,
                         std::function<void(std::int64_t)> done) {
  // Blocking read: a concurrent fetch_add holds the tuple between its take
  // and re-insert, so a plain read could legitimately catch the gap.
  cluster_.runtime(process.machine)
      .read_blocking(process, by_name("ctr/" + name_),
                     [done = std::move(done)](SearchResponse tuple) {
                       PASO_REQUIRE(tuple.has_value(),
                                    "counter tuple lost permanently");
                       if (done) done(std::get<std::int64_t>(tuple->fields[1]));
                     },
                     BlockingMode::kMarker);
}

// --- TupleQueue ------------------------------------------------------------------

void TupleQueue::create(ProcessId process) {
  PasoRuntime& runtime = cluster_.runtime(process.machine);
  runtime.insert(process, coord_tuple("q/" + name_ + "/tail", 0, 0), {});
  runtime.insert(process, coord_tuple("q/" + name_ + "/head", 0, 0), {});
}

void TupleQueue::push(ProcessId process, std::string payload,
                      std::function<void()> done) {
  PasoRuntime& runtime = cluster_.runtime(process.machine);
  const std::string tail_name = "q/" + name_ + "/tail";
  runtime.read_del_blocking(
      process, by_name(tail_name),
      [this, process, tail_name, payload = std::move(payload),
       done = std::move(done)](SearchResponse ticket) mutable {
        PASO_REQUIRE(ticket.has_value(), "queue tail ticket lost");
        const auto seq = std::get<std::int64_t>(ticket->fields[1]);
        PasoRuntime& runtime = cluster_.runtime(process.machine);
        runtime.insert(process,
                       coord_tuple("q/" + name_ + "/item", seq, 0, payload),
                       {});
        runtime.insert(process, coord_tuple(tail_name, seq + 1, 0),
                       [done = std::move(done)] {
                         if (done) done();
                       });
      },
      BlockingMode::kMarker);
}

void TupleQueue::pop(ProcessId process,
                     std::function<void(std::optional<std::string>)> popped,
                     sim::SimTime deadline) {
  PasoRuntime& runtime = cluster_.runtime(process.machine);
  const std::string head_name = "q/" + name_ + "/head";
  runtime.read_del_blocking(
      process, by_name(head_name),
      [this, process, head_name, popped = std::move(popped),
       deadline](SearchResponse ticket) mutable {
        if (!ticket) {
          if (popped) popped(std::nullopt);
          return;
        }
        const auto seq = std::get<std::int64_t>(ticket->fields[1]);
        PasoRuntime& runtime = cluster_.runtime(process.machine);
        runtime.read_del_blocking(
            process, by_name_a("q/" + name_ + "/item", seq),
            [this, process, head_name, seq,
             popped = std::move(popped)](SearchResponse item) mutable {
              PasoRuntime& runtime = cluster_.runtime(process.machine);
              if (!item) {
                // Deadline while waiting for our item: put the head ticket
                // back so later consumers can retry this sequence number.
                runtime.insert(process, coord_tuple(head_name, seq, 0), {});
                if (popped) popped(std::nullopt);
                return;
              }
              runtime.insert(process, coord_tuple(head_name, seq + 1, 0), {});
              if (popped) {
                popped(std::get<std::string>(item->fields[3]));
              }
            },
            BlockingMode::kMarker, deadline);
      },
      BlockingMode::kMarker, deadline);
}

}  // namespace paso::coord
