#include "exec/threaded_executor.hpp"

#include <cmath>

#include "common/require.hpp"

namespace paso::exec {

namespace {

std::chrono::steady_clock::duration to_duration(Time micros) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::micro>(micros));
}

}  // namespace

ThreadedExecutor::ThreadedExecutor(Runner runner, ContextCapture capture)
    : epoch_(std::chrono::steady_clock::now()),
      runner_(runner ? std::move(runner)
                     : [](Action&& action, std::uint64_t) { action(); }),
      capture_(std::move(capture)),
      thread_([this] { loop(); }) {}

ThreadedExecutor::~ThreadedExecutor() { stop(); }

Time ThreadedExecutor::now() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TimerId ThreadedExecutor::schedule_at(Time at, Action action) {
  PASO_REQUIRE(action != nullptr, "null action");
  PASO_REQUIRE(!std::isnan(at), "NaN deadline");
  // Capture the scheduling thread's context OUTSIDE the queue mutex: the
  // capture hook reads thread-local state and must see the scheduler's
  // ambient domain, not the timer thread's.
  const std::uint64_t ctx = capture_ ? capture_() : ~std::uint64_t{0};
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    queue_.emplace(Key{at, seq}, Entry{std::move(action), ctx});
  }
  cv_.notify_one();
  return TimerId{seq};
}

TimerId ThreadedExecutor::schedule_after(Time delay, Action action) {
  PASO_REQUIRE(delay >= 0, "negative delay");
  return schedule_at(now() + delay, std::move(action));
}

bool ThreadedExecutor::cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->first.seq == id.value) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t ThreadedExecutor::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool ThreadedExecutor::running_action() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_action_;
}

Time ThreadedExecutor::next_due() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty() ? kNever : queue_.begin()->first.at;
}

void ThreadedExecutor::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped (or stopping on another thread); the join below
      // must only happen once.
      return;
    }
    stopping_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void ThreadedExecutor::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      continue;
    }
    const Time due = queue_.begin()->first.at;
    if (due == kNever) {
      // Parked forever; only a new (finite) action or stop() wakes us.
      cv_.wait(lock, [this, due] {
        return stopping_ || queue_.empty() || queue_.begin()->first.at != due;
      });
      continue;
    }
    if (due > now()) {
      // Sleep until due — or until an earlier action or stop arrives.
      cv_.wait_until(lock,
                     std::chrono::steady_clock::now() + to_duration(due - now()),
                     [this, due] {
                       return stopping_ || queue_.empty() ||
                              queue_.begin()->first.at < due || due <= now();
                     });
      continue;
    }
    Entry entry = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    in_action_ = true;
    lock.unlock();
    runner_(std::move(entry.action), entry.ctx);
    lock.lock();
    in_action_ = false;
  }
}

}  // namespace paso::exec
