// Clock/Executor seam: the scheduling surface the protocol stack runs on.
//
// Everything above the network — runtimes, the group service, batchers,
// marker sweeps, recovery timers — schedules work against this interface
// instead of a concrete engine. Two implementations exist:
//
//   * sim::Simulator (src/sim): the deterministic discrete-event engine.
//     Time is virtual, in the cost model's units; two events at the same
//     time fire in scheduling order. The substrate for tests, chaos
//     schedules, and the differential oracle.
//   * exec::ThreadedExecutor (this directory): a real-clock timer loop
//     driven by std::chrono::steady_clock. Time is wall microseconds since
//     the executor's birth. The substrate for the threaded transport and
//     wall-clock benchmarks.
//
// The same protocol stack compiles against this interface once and runs on
// either engine; docs/threading.md spells out which determinism guarantees
// survive the move to real time.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace paso::exec {

/// A point in executor time. Virtual cost units on the simulator, wall
/// microseconds on the threaded executor. Always non-negative.
using Time = double;

/// Sentinel for "no deadline / disabled timer": later than every event.
inline constexpr Time kNever = std::numeric_limits<Time>::infinity();

/// Handle for cancelling a scheduled action.
struct TimerId {
  std::uint64_t value = 0;
  friend auto operator<=>(const TimerId&, const TimerId&) = default;
};

class Executor {
 public:
  using Action = std::function<void()>;

  virtual ~Executor() = default;

  /// Current executor time.
  virtual Time now() const = 0;

  /// Schedule `action` at absolute time `at`. The simulator requires
  /// `at >= now()`; the threaded executor clamps past times to "as soon as
  /// possible". Scheduling at kNever parks the action forever (it only runs
  /// if the simulator's queue drains down to it; the threaded executor never
  /// fires it).
  virtual TimerId schedule_at(Time at, Action action) = 0;

  /// Schedule `action` `delay` time units from now (delay >= 0).
  virtual TimerId schedule_after(Time delay, Action action) = 0;

  /// Cancel a pending action. Cancelling an already-fired or
  /// already-cancelled action is a harmless no-op (returns false).
  virtual bool cancel(TimerId id) = 0;
};

}  // namespace paso::exec
