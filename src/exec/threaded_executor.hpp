// Real-clock Executor: a steady_clock-driven timer loop on its own thread.
//
// Time is wall microseconds since construction (double, like SimTime, so the
// protocol stack's deadline arithmetic carries over unchanged — one virtual
// cost unit becomes one microsecond). A dedicated timer thread sleeps until
// the earliest due action and runs it through the installed runner; the
// threaded transport supplies a runner that takes the protocol stack lock,
// so timer callbacks interleave safely with deliveries and client issues.
//
// Determinism is explicitly NOT provided: two actions due at the same
// microsecond run in scheduling order (the tie-break the simulator also
// uses), but real clocks never reproduce a timeline. See docs/threading.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "exec/executor.hpp"

namespace paso::exec {

class ThreadedExecutor final : public Executor {
 public:
  /// Wraps every action execution (e.g. in a lock). Receives the context
  /// word captured when the action was scheduled (see ContextCapture).
  /// Defaults to plain call.
  using Runner = std::function<void(Action&&, std::uint64_t)>;
  /// Called at schedule time (on the scheduling thread) to capture an
  /// opaque context word stored with the action and handed back to the
  /// runner at fire time. The sharded transports capture the scheduler's
  /// ambient domain mask here, so timer chains inherit their root's
  /// domain. Defaults to ~0 (the global domain).
  using ContextCapture = std::function<std::uint64_t()>;

  explicit ThreadedExecutor(Runner runner = {}, ContextCapture capture = {});
  ~ThreadedExecutor() override;

  ThreadedExecutor(const ThreadedExecutor&) = delete;
  ThreadedExecutor& operator=(const ThreadedExecutor&) = delete;

  Time now() const override;
  TimerId schedule_at(Time at, Action action) override;
  TimerId schedule_after(Time delay, Action action) override;
  bool cancel(TimerId id) override;

  /// Actions waiting to fire (racy snapshot; for quiescence polling).
  std::size_t pending() const;
  /// True while the timer thread is inside an action.
  bool running_action() const;
  /// Earliest due time among pending actions, kNever when none. Racy
  /// snapshot, like pending().
  Time next_due() const;

  /// Stop the loop and join the thread; pending actions are dropped without
  /// running. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Key {
    Time at;
    std::uint64_t seq;  // scheduling order breaks same-instant ties
    bool operator<(const Key& other) const {
      return at != other.at ? at < other.at : seq < other.seq;
    }
  };

  struct Entry {
    Action action;
    std::uint64_t ctx;
  };

  void loop();

  const std::chrono::steady_clock::time_point epoch_;
  Runner runner_;
  ContextCapture capture_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, Entry> queue_;
  std::uint64_t next_seq_ = 1;
  bool stopping_ = false;
  bool in_action_ = false;
  std::thread thread_;
};

}  // namespace paso::exec
