// Strongly-typed identifiers used throughout the PASO system.
//
// The paper's model (Section 3) has a set `Mach` of machines, each hosting a
// single memory server plus compute processes; objects carry a unique
// identity "signed by the creating process" (Section 4). These small value
// types give those notions distinct, non-interchangeable C++ types.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace paso {

/// Index of a machine in `Mach`. Machines are numbered 0..n-1.
struct MachineId {
  std::uint32_t value = 0;

  friend auto operator<=>(const MachineId&, const MachineId&) = default;
};

/// A compute process. Processes are identified by the machine hosting them
/// and a per-machine ordinal.
struct ProcessId {
  MachineId machine;
  std::uint32_t ordinal = 0;

  friend auto operator<=>(const ProcessId&, const ProcessId&) = default;
};

/// Unique object identity (Section 4: "attaching to each object some unique
/// identification signed by its creating process"). The pair (creator,
/// sequence) is unique system-wide because each process numbers its own
/// insertions.
struct ObjectId {
  ProcessId creator;
  std::uint64_t sequence = 0;

  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;
};

/// Name of a process group (Section 3.2, `Names`).
using GroupName = std::string;

/// Monotone identifier of a group view (membership epoch).
struct ViewId {
  std::uint64_t value = 0;

  friend auto operator<=>(const ViewId&, const ViewId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, MachineId m) {
  return os << "M" << m.value;
}
inline std::ostream& operator<<(std::ostream& os, ProcessId p) {
  return os << p.machine << ".p" << p.ordinal;
}
inline std::ostream& operator<<(std::ostream& os, ObjectId o) {
  return os << o.creator << "#" << o.sequence;
}
inline std::ostream& operator<<(std::ostream& os, ViewId v) {
  return os << "v" << v.value;
}

}  // namespace paso

namespace std {

template <>
struct hash<paso::MachineId> {
  size_t operator()(const paso::MachineId& m) const noexcept {
    return std::hash<std::uint32_t>{}(m.value);
  }
};

template <>
struct hash<paso::ProcessId> {
  size_t operator()(const paso::ProcessId& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.machine.value) << 32) | p.ordinal);
  }
};

template <>
struct hash<paso::ObjectId> {
  size_t operator()(const paso::ObjectId& o) const noexcept {
    const size_t h1 = std::hash<paso::ProcessId>{}(o.creator);
    const size_t h2 = std::hash<std::uint64_t>{}(o.sequence);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

}  // namespace std
