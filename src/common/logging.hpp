// Minimal leveled logger.
//
// Off by default so the event-driven simulator stays fast; tests and
// examples can raise the level to trace protocol behaviour. Not thread-safe
// by design: the simulator is single-threaded and deterministic.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace paso {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }

  void write(LogLevel level, const std::string& line);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    stream_ << "[" << tag << "] ";
  }
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return level >= Logger::instance().level();
}

}  // namespace paso

#define PASO_LOG(level, tag)                        \
  if (!::paso::log_enabled(level)) {                \
  } else                                            \
    ::paso::detail::LogLine(level, tag)

#define PASO_TRACE(tag) PASO_LOG(::paso::LogLevel::kTrace, tag)
#define PASO_DEBUG(tag) PASO_LOG(::paso::LogLevel::kDebug, tag)
#define PASO_INFO(tag) PASO_LOG(::paso::LogLevel::kInfo, tag)
#define PASO_WARN(tag) PASO_LOG(::paso::LogLevel::kWarn, tag)
