#include "common/logging.hpp"

namespace paso {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& line) {
  if (level < level_) return;
  std::clog << line << '\n';
}

}  // namespace paso
