// Bounded byte-buffer reader/writer used by the wire codec.
//
// Fixed-width little-endian primitives only: the PASO wire format is
// schema-directed (field types come from the object-class signature), so no
// self-describing overhead is needed beyond what the cost model's declared
// sizes already charge.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/require.hpp"

namespace paso {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }

  /// 4-byte length prefix + raw bytes.
  void text(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }

  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, 8);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v;
    raw(&v, 8);
    return v;
  }
  double f64() {
    double v;
    raw(&v, 8);
    return v;
  }
  std::string text() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) {
    PASO_REQUIRE(pos_ + n <= bytes_.size(), "wire decode past end of buffer");
  }
  void raw(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace paso
