#include "common/rng.hpp"

#include <cmath>

namespace paso {

std::size_t Rng::zipf(std::size_t size, double s) {
  PASO_REQUIRE(size > 0, "zipf: empty support");
  if (size == 1) return 0;
  // Inverse-CDF on the continuous bounded Pareto envelope, clamped to the
  // integer support. Exact Zipf sampling is unnecessary for workload shaping.
  const double n = static_cast<double>(size);
  double rank = 0.0;
  if (s == 1.0) {
    rank = std::exp(uniform01() * std::log(n)) - 1.0;
  } else {
    const double one_minus_s = 1.0 - s;
    const double top = std::pow(n, one_minus_s);
    rank = std::pow(uniform01() * (top - 1.0) + 1.0, 1.0 / one_minus_s) - 1.0;
  }
  auto idx = static_cast<std::size_t>(rank);
  if (idx >= size) idx = size - 1;
  return idx;
}

}  // namespace paso
