// Cost-model primitives shared across the stack.
//
// The paper uses three cost measures per PASO operation (Section 4.3):
//   msg-cost — total message cost under msg-cost(m) = alpha + beta*|m|,
//   time     — maximum time any single server spends on the operation,
//   work     — sum over servers of the time spent on the operation.
// `CostTriple` carries all three; arithmetic composes them the way the
// macro expansions in Appendix A do (sequential steps add msg-cost and work;
// `time` composition depends on whether steps are sequential or parallel,
// which the call sites encode explicitly).
#pragma once

#include <cstddef>
#include <ostream>

namespace paso {

/// Abstract cost units (the paper leaves alpha/beta dimensionless).
using Cost = double;

/// Parameters of the linear message cost model, msg-cost = alpha + beta*|m|.
struct CostModel {
  Cost alpha = 10.0;  ///< per-message startup cost
  Cost beta = 1.0;    ///< per-byte (per-unit-length) cost

  /// Cost of one point-to-point transmission of a message of `bytes` length.
  Cost message(std::size_t bytes) const {
    return alpha + beta * static_cast<Cost>(bytes);
  }

  /// Analytic cost of a gcast per Section 3.3:
  ///   |g|(alpha + beta|msg|) + |g|*alpha + alpha + beta|resp|
  /// i.e. fan-out transmissions, empty done-acks to the leader, and the
  /// single gathered response back to the issuer.
  Cost gcast(std::size_t group_size, std::size_t msg_bytes,
             std::size_t resp_bytes) const {
    const Cost g = static_cast<Cost>(group_size);
    return g * message(msg_bytes) + g * message(0) + message(resp_bytes);
  }

  /// The approximate form the paper reports: |g|(2*alpha + beta(|msg|+|resp|)).
  Cost gcast_approx(std::size_t group_size, std::size_t msg_bytes,
                    std::size_t resp_bytes) const {
    const Cost g = static_cast<Cost>(group_size);
    return g * (2 * alpha + beta * static_cast<Cost>(msg_bytes + resp_bytes));
  }
};

/// The (msg-cost, time, work) triple of Section 4.3.
struct CostTriple {
  Cost msg_cost = 0;
  Cost time = 0;
  Cost work = 0;

  CostTriple& operator+=(const CostTriple& other) {
    msg_cost += other.msg_cost;
    time += other.time;
    work += other.work;
    return *this;
  }

  friend CostTriple operator+(CostTriple a, const CostTriple& b) {
    return a += b;
  }

  friend bool operator==(const CostTriple&, const CostTriple&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const CostTriple& c) {
  return os << "{msg=" << c.msg_cost << ", time=" << c.time
            << ", work=" << c.work << "}";
}

}  // namespace paso
