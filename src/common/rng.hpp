// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator, workload generators and
// randomized online algorithms draws from this engine so that every test and
// benchmark run is exactly reproducible from a seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/require.hpp"

namespace paso {

/// xoshiro256** by Blackman & Vigna, seeded via SplitMix64. Small, fast and
/// statistically strong; header-only so it inlines into tight workload loops.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    PASO_REQUIRE(lo <= hi, "uniform: empty range");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + draw % span;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Uniformly chosen index into a container of the given size.
  std::size_t index(std::size_t size) {
    PASO_REQUIRE(size > 0, "index: empty container");
    return static_cast<std::size_t>(uniform(0, size - 1));
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Geometric-ish burst length: number of consecutive repeats with
  /// continuation probability p, capped at `cap`.
  std::size_t burst(double p, std::size_t cap) {
    std::size_t length = 1;
    while (length < cap && chance(p)) ++length;
    return length;
  }

  /// Zipf-like draw over {0, ..., size-1} with exponent s, using rejection
  /// against the harmonic envelope. Good enough for skewed workloads.
  std::size_t zipf(std::size_t size, double s);

  /// Derive an independent child generator (for per-actor streams).
  Rng split() { return Rng((*this)() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace paso
