// Streaming summary statistics: count / mean / min / max and exact
// percentiles (samples are kept; the workloads here are small enough that
// exactness beats sketching). Used for operation-latency reporting in the
// benches and the analysis helpers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/require.hpp"

namespace paso {

class Summary {
 public:
  void add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const {
    PASO_REQUIRE(!samples_.empty(), "mean of empty summary");
    double sum = 0;
    for (const double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
  }

  double min() const {
    PASO_REQUIRE(!samples_.empty(), "min of empty summary");
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const {
    PASO_REQUIRE(!samples_.empty(), "max of empty summary");
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// Exact percentile by nearest-rank (q in [0, 1]).
  double percentile(double q) const {
    PASO_REQUIRE(!samples_.empty(), "percentile of empty summary");
    PASO_REQUIRE(q >= 0 && q <= 1, "percentile out of range");
    sort();
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(rank, samples_.size() - 1)];
  }

  double median() const { return percentile(0.5); }

  void merge(const Summary& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace paso
