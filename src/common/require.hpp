// Invariant checking.
//
// PASO_REQUIRE is an always-on precondition/invariant check: distributed
// algorithms fail subtly, and the cost of a branch is negligible next to the
// simulation work. Violations throw so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace paso {

/// Thrown when a PASO_REQUIRE invariant fails.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& message);
}  // namespace detail

}  // namespace paso

#define PASO_REQUIRE(expr, message)                                      \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::paso::detail::require_failed(#expr, __FILE__, __LINE__,          \
                                     (message));                         \
    }                                                                    \
  } while (false)
