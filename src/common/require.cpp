#include "common/require.hpp"

#include <sstream>

namespace paso::detail {

void require_failed(const char* expr, const char* file, int line,
                    const std::string& message) {
  std::ostringstream os;
  os << "invariant violated: " << message << " [" << expr << "] at " << file
     << ":" << line;
  throw InvariantViolation(os.str());
}

}  // namespace paso::detail
