// Per-operation tracing for PASO primitives.
//
// Every insert / read / read&del (plain, robust or blocking) gets a trace
// id at issue time, and each layer it flows through — runtime, GcastBatcher,
// GroupService, BusNetwork — records a span event against that id: enqueue,
// batch-coalesce, gcast dispatch, per-member service, response fan-in,
// retry, deadline expiry, view-change re-route. In the spirit of the
// time-annotated operation analyses of Mostéfaoui–Raynal, a trace is the
// full per-operation timeline the aggregate CostLedger cannot give.
//
// Cost attribution works through a *context*: the issuing layer establishes
// the active trace set (OpTracer::Scope) around its synchronous calls into
// the layer below; layers whose work completes in later simulator events
// (the batcher's window timer, the group queue) capture the context when the
// operation is handed to them and re-establish it around their own
// downstream calls. BusNetwork::send records one MessageRecord per charged
// transmission — tag, bytes, and the alpha/beta decomposition of
// msg-cost(m) = alpha + beta*|m| — attributed to whatever trace set is
// active. A message carrying a coalesced batch therefore lists every member
// op's trace; cost totals stay exact because each transmission is recorded
// exactly once no matter how many traces share it.
//
// Everything is recording-only: with no tracer installed the instrumented
// layers skip all of this, and with one installed no event timing, cost or
// scheduling decision changes.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/cost.hpp"
#include "common/ids.hpp"
#include "sim/simulator.hpp"

namespace paso::obs {

/// Trace identifier; 0 means "no trace" everywhere.
using TraceId = std::uint64_t;

enum class SpanKind {
  kIssue,     ///< runtime accepted the operation (note = op kind)
  kEnqueue,   ///< parked in a batcher route queue (value = queue depth)
  kCoalesce,  ///< travels in a multi-op batch (value = batch size)
  kDispatch,  ///< gcast dispatched to the group (value = target count)
  kServe,     ///< one member processed it (value = processing cost)
  kResponse,  ///< gathered response sent to the issuer (value = resp bytes)
  kRetry,     ///< re-sent: robust retry or vsync retransmission
  kDeadline,  ///< deadline expired before a definitive answer
  kReroute,   ///< view change re-routed the pending operation
  kFinish,    ///< operation resolved (note = status)
  kPersist,   ///< durable-persistence event (note = append / checkpoint /
              ///< replay / delta / full; value = bytes or records)
};

const char* span_kind_name(SpanKind kind);

struct SpanEvent {
  TraceId trace = 0;
  SpanKind kind = SpanKind::kIssue;
  MachineId machine;
  sim::SimTime at = 0;
  std::string note;
  double value = 0;
};

/// One charged bus transmission, with its alpha/beta cost decomposition and
/// every trace that shared it (empty = untraced background traffic). On a
/// multi-segment topology the record also carries its route attribution:
/// source/destination segment and bridge hops crossed (all zero on the
/// degenerate single bus).
struct MessageRecord {
  std::vector<TraceId> traces;
  std::string tag;
  std::size_t bytes = 0;
  Cost alpha_cost = 0;
  Cost beta_cost = 0;
  sim::SimTime at = 0;
  std::uint32_t seg_from = 0;
  std::uint32_t seg_to = 0;
  std::uint32_t hops = 0;
};

class OpTracer {
 public:
  /// Open a trace; records the kIssue span. `op` names the primitive
  /// ("insert", "read", "read&del", ...).
  TraceId begin(std::string op, MachineId issuer, sim::SimTime at);

  void span(TraceId trace, SpanKind kind, MachineId machine, sim::SimTime at,
            std::string note = {}, double value = 0);

  /// Close a trace with its outcome ("ok", "fail", "timeout", ...).
  void finish(TraceId trace, std::string status, MachineId machine,
              sim::SimTime at);

  /// Called by BusNetwork for every charged transmission; attributes the
  /// message to the currently active trace context. The segment/hop
  /// arguments carry the route on a multi-segment topology (all zero on
  /// the single bus).
  void record_message(const std::string& tag, std::size_t bytes, Cost alpha,
                      Cost beta, sim::SimTime at, std::uint32_t seg_from = 0,
                      std::uint32_t seg_to = 0, std::uint32_t hops = 0);

  /// The active trace set (what record_message attributes to).
  const std::vector<TraceId>& context() const { return context_; }

  /// RAII context: REPLACES the active trace set for its lifetime (the
  /// operation(s) whose work the enclosed downstream calls perform). Null
  /// tracer and trace id 0 are no-ops, so call sites need no guards.
  class Scope {
   public:
    Scope(OpTracer* tracer, TraceId trace);
    Scope(OpTracer* tracer, const std::vector<TraceId>& traces);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OpTracer* tracer_ = nullptr;
    std::vector<TraceId> saved_;
  };

  const std::vector<SpanEvent>& events() const { return events_; }
  const std::vector<MessageRecord>& messages() const { return messages_; }
  std::uint64_t trace_count() const { return next_trace_ - 1; }

  /// Reconciliation totals: every charged transmission lands in exactly one
  /// of these two buckets, so traced + untraced == CostLedger msg-cost over
  /// the same interval.
  Cost traced_msg_cost() const;
  Cost untraced_msg_cost() const;

  /// Drop all recorded data (keeps issued ids unique). Pair with
  /// CostLedger::reset() so reconciliation windows line up.
  void clear();

  /// `{"span",...}` and `{"msg",...}` JSON rows, one per line
  /// (docs/observability.md documents the schema; tools/trace_report
  /// consumes it).
  void write_jsonl(std::ostream& os) const;

 private:
  std::vector<SpanEvent> events_;
  std::vector<MessageRecord> messages_;
  std::vector<TraceId> context_;
  TraceId next_trace_ = 1;
};

}  // namespace paso::obs
