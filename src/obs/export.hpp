// Minimal reader for the flat JSON rows this repo emits.
//
// Everything the stack exports — `{"bench",...}` from bench_util,
// `{"metric",...}` from MetricsRegistry, `{"span",...}`/`{"msg",...}` from
// OpTracer — is one flat JSON object per line whose values are strings,
// numbers, or arrays of numbers. This parser covers exactly that subset (no
// nesting, no escapes beyond \" and \\, no booleans) so tools/trace_report
// and the tests can consume sidecar files without an external JSON
// dependency.
#pragma once

#include <istream>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace paso::obs {

/// One parsed line: field -> scalar, plus field -> numeric array.
struct JsonRow {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
  std::map<std::string, std::vector<double>> arrays;

  bool has(const std::string& key) const {
    return strings.count(key) || numbers.count(key) || arrays.count(key);
  }
  /// Missing keys return "" / 0 / empty — callers check has() when absence
  /// matters.
  std::string str(const std::string& key) const;
  double num(const std::string& key) const;
  std::vector<double> array(const std::string& key) const;
};

/// Parse one `{...}` line. Returns nullopt on anything outside the flat
/// subset (including non-JSON lines, so callers can feed mixed output).
std::optional<JsonRow> parse_json_row(const std::string& line);

/// All parseable rows in a stream; silently skips non-row lines.
std::vector<JsonRow> read_json_rows(std::istream& is);

}  // namespace paso::obs
