// The handle the instrumented layers hold.
//
// Every layer that publishes telemetry keeps an `Obs` by value: two raw
// pointers, both usually null. Call sites guard with `if (obs_.metrics)` /
// `if (obs_.tracer)`, so with observability disabled the instrumentation is
// one pointer test per site — no allocation, no virtual dispatch, no change
// to costs or event scheduling. `Observability` is the owning bundle the
// Cluster creates when observation is switched on.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace paso::obs {

/// Non-owning, nullable handle. Default-constructed == disabled.
struct Obs {
  MetricsRegistry* metrics = nullptr;
  OpTracer* tracer = nullptr;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }
};

/// Owning bundle; lives on the Cluster when observability is enabled.
struct Observability {
  MetricsRegistry metrics;
  OpTracer tracer;

  Obs handle() { return Obs{&metrics, &tracer}; }
};

}  // namespace paso::obs
