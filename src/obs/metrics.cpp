#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/require.hpp"

namespace paso::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    PASO_REQUIRE(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += v;
}

void Histogram::reset() {
  buckets_.assign(bounds_.size() + 1, 0);
  count_ = 0;
  sum_ = 0;
}

double Histogram::quantile(double q) const {
  PASO_REQUIRE(q >= 0 && q <= 1, "quantile must be in [0, 1]");
  // An empty histogram has no quantiles: NaN, not a fabricated 0 a caller
  // could mistake for a measured latency.
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t before = seen;
    seen += buckets_[i];
    if (static_cast<double>(seen) < rank) continue;
    if (i >= bounds_.size()) {
      // Overflow bucket: no upper edge — report the last finite bound (or
      // 0 for a boundless histogram, which can't happen in practice).
      return bounds_.empty() ? 0 : bounds_.back();
    }
    const double lo = i == 0 ? 0 : bounds_[i - 1];
    const double hi = bounds_[i];
    const double into =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets_[i]);
    return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[Key{name, kClusterScope}];
}

Counter& MetricsRegistry::counter(const std::string& name, MachineId machine) {
  return counters_[Key{name, static_cast<int>(machine.value)}];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[Key{name, kClusterScope}];
}

Gauge& MetricsRegistry::gauge(const std::string& name, MachineId machine) {
  return gauges_[Key{name, static_cast<int>(machine.value)}];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(Key{name, kClusterScope});
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(Key{name, kClusterScope}, Histogram(std::move(bounds)))
             .first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      MachineId machine,
                                      std::vector<double> bounds) {
  const Key key{name, static_cast<int>(machine.value)};
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(key, Histogram(std::move(bounds))).first;
  }
  return it->second;
}

void MetricsRegistry::on_machine_crash(MachineId machine) {
  const int scope = static_cast<int>(machine.value);
  for (auto& [key, c] : counters_) {
    if (key.machine == scope) c.value = 0;
  }
  for (auto& [key, g] : gauges_) {
    if (key.machine == scope) g.value = 0;
  }
  for (auto& [key, h] : histograms_) {
    if (key.machine == scope) h.reset();
  }
  counter("cluster.restarts").inc();
}

std::uint64_t MetricsRegistry::restarts() const {
  auto it = counters_.find(Key{"cluster.restarts", kClusterScope});
  return it == counters_.end() ? 0 : it->second.value;
}

namespace {

void row_head(std::ostream& os, const std::string& name, int machine,
              const char* type) {
  os << "{\"metric\":\"" << name << "\",\"machine\":" << machine
     << ",\"type\":\"" << type << "\"";
}

}  // namespace

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const auto& [key, c] : counters_) {
    row_head(os, key.name, key.machine, "counter");
    os << ",\"value\":" << c.value << "}\n";
  }
  for (const auto& [key, g] : gauges_) {
    row_head(os, key.name, key.machine, "gauge");
    os << ",\"value\":" << g.value << "}\n";
  }
  for (const auto& [key, h] : histograms_) {
    row_head(os, key.name, key.machine, "histogram");
    os << ",\"count\":" << h.count() << ",\"sum\":" << h.sum()
       << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      os << (i ? "," : "") << h.bounds()[i];
    }
    os << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      os << (i ? "," : "") << h.buckets()[i];
    }
    os << "]}\n";
  }
}

void MetricsRegistry::write_csv(std::ostream& os) const {
  os << "name,machine,type,value,count,sum\n";
  for (const auto& [key, c] : counters_) {
    os << key.name << "," << key.machine << ",counter," << c.value << ",,\n";
  }
  for (const auto& [key, g] : gauges_) {
    os << key.name << "," << key.machine << ",gauge," << g.value << ",,\n";
  }
  for (const auto& [key, h] : histograms_) {
    os << key.name << "," << key.machine << ",histogram,," << h.count() << ","
       << h.sum() << "\n";
  }
}

}  // namespace paso::obs
