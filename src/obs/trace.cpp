#include "obs/trace.hpp"

#include <utility>

namespace paso::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIssue:
      return "issue";
    case SpanKind::kEnqueue:
      return "enqueue";
    case SpanKind::kCoalesce:
      return "coalesce";
    case SpanKind::kDispatch:
      return "dispatch";
    case SpanKind::kServe:
      return "serve";
    case SpanKind::kResponse:
      return "response";
    case SpanKind::kRetry:
      return "retry";
    case SpanKind::kDeadline:
      return "deadline";
    case SpanKind::kReroute:
      return "reroute";
    case SpanKind::kFinish:
      return "finish";
    case SpanKind::kPersist:
      return "persist";
  }
  return "?";
}

TraceId OpTracer::begin(std::string op, MachineId issuer, sim::SimTime at) {
  const TraceId id = next_trace_++;
  events_.push_back(
      SpanEvent{id, SpanKind::kIssue, issuer, at, std::move(op), 0});
  return id;
}

void OpTracer::span(TraceId trace, SpanKind kind, MachineId machine,
                    sim::SimTime at, std::string note, double value) {
  if (trace == 0) return;
  events_.push_back(SpanEvent{trace, kind, machine, at, std::move(note), value});
}

void OpTracer::finish(TraceId trace, std::string status, MachineId machine,
                      sim::SimTime at) {
  span(trace, SpanKind::kFinish, machine, at, std::move(status));
}

void OpTracer::record_message(const std::string& tag, std::size_t bytes,
                              Cost alpha, Cost beta, sim::SimTime at,
                              std::uint32_t seg_from, std::uint32_t seg_to,
                              std::uint32_t hops) {
  messages_.push_back(MessageRecord{context_, tag, bytes, alpha, beta, at,
                                    seg_from, seg_to, hops});
}

OpTracer::Scope::Scope(OpTracer* tracer, TraceId trace) : tracer_(tracer) {
  if (tracer_ == nullptr || trace == 0) {
    tracer_ = nullptr;
    return;
  }
  saved_ = std::move(tracer_->context_);
  tracer_->context_.assign(1, trace);
}

OpTracer::Scope::Scope(OpTracer* tracer, const std::vector<TraceId>& traces)
    : tracer_(tracer) {
  if (tracer_ == nullptr || traces.empty()) {
    tracer_ = nullptr;
    return;
  }
  saved_ = std::move(tracer_->context_);
  tracer_->context_ = traces;
}

OpTracer::Scope::~Scope() {
  if (tracer_ != nullptr) tracer_->context_ = std::move(saved_);
}

Cost OpTracer::traced_msg_cost() const {
  Cost total = 0;
  for (const auto& m : messages_) {
    if (!m.traces.empty()) total += m.alpha_cost + m.beta_cost;
  }
  return total;
}

Cost OpTracer::untraced_msg_cost() const {
  Cost total = 0;
  for (const auto& m : messages_) {
    if (m.traces.empty()) total += m.alpha_cost + m.beta_cost;
  }
  return total;
}

void OpTracer::clear() {
  events_.clear();
  messages_.clear();
}

void OpTracer::write_jsonl(std::ostream& os) const {
  for (const auto& e : events_) {
    os << "{\"span\":\"" << span_kind_name(e.kind) << "\",\"trace\":" << e.trace
       << ",\"machine\":" << e.machine.value << ",\"at\":" << e.at;
    if (!e.note.empty()) os << ",\"note\":\"" << e.note << "\"";
    if (e.value != 0) os << ",\"value\":" << e.value;
    os << "}\n";
  }
  for (const auto& m : messages_) {
    os << "{\"msg\":\"" << m.tag << "\",\"bytes\":" << m.bytes
       << ",\"alpha\":" << m.alpha_cost << ",\"beta\":" << m.beta_cost
       << ",\"at\":" << m.at;
    if (m.seg_from != 0 || m.seg_to != 0 || m.hops != 0) {
      // Route attribution only appears for multi-segment runs, keeping the
      // single-bus JSONL byte-identical to the pre-topology schema.
      os << ",\"seg_from\":" << m.seg_from << ",\"seg_to\":" << m.seg_to
         << ",\"hops\":" << m.hops;
    }
    os << ",\"traces\":[";
    for (std::size_t i = 0; i < m.traces.size(); ++i) {
      os << (i ? "," : "") << m.traces[i];
    }
    os << "]}\n";
  }
}

}  // namespace paso::obs
