// Metrics registry: live counters, gauges and fixed-bucket histograms for
// the whole PASO stack.
//
// The paper's argument is quantitative (Figure 1 cost tables, the Theorem
// 2/3 competitive ratios, the Section 3.3 gcast formulas), but CostLedger
// only reports aggregate totals after a run ends. The registry is the live
// counterpart: every layer publishes per-server and per-class measurements
// while the run is still going, cheap enough for hot paths — metric handles
// are plain structs mutated by direct increment, there are no locks (the
// simulation is single-threaded) and no allocation after handle resolution.
//
// Scoping and crash semantics (Section 3): a metric is either
// *cluster-scoped* (machine == kClusterScope) or *machine-scoped*. A server
// crash erases that machine's metrics exactly like it erases its memory —
// the values are zeroed, never the registration, so cached handles stay
// valid across crash/recover cycles — while the cluster-scoped side keeps a
// `cluster.restarts` counter of how often that happened.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace paso::obs {

/// Monotone event count. Plain increment: safe for the hottest paths.
struct Counter {
  std::uint64_t value = 0;
  void inc(std::uint64_t n = 1) { value += n; }
};

/// Instantaneous (or additive, for cost decompositions) real value.
struct Gauge {
  double value = 0;
  void set(double v) { value = v; }
  void add(double v) { value += v; }
};

/// Fixed-bucket histogram: `bounds` are ascending upper bounds; bucket i
/// counts observations <= bounds[i], the final overflow bucket counts the
/// rest. Count and sum ride along so means are recoverable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  void reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Estimated q-quantile (q in [0, 1]), linearly interpolated inside the
  /// bucket that crosses rank q*count. Observations past the last bound
  /// yield that bound (the overflow bucket has no upper edge to
  /// interpolate toward). NaN when empty — an empty histogram has no
  /// quantiles, and a fabricated 0 reads like a measured latency. The
  /// wall-clock and overload benches report p50/p99/p999 through this.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Machine value standing for "the cluster, not any one server".
inline constexpr int kClusterScope = -1;

class MetricsRegistry {
 public:
  /// Resolve (and create on first use) a metric. References are stable for
  /// the registry's lifetime — resolve once, keep the handle on the hot
  /// path. The cluster-scope overloads register under kClusterScope.
  Counter& counter(const std::string& name);
  Counter& counter(const std::string& name, MachineId machine);
  Gauge& gauge(const std::string& name);
  Gauge& gauge(const std::string& name, MachineId machine);
  /// `bounds` applies on first creation only; later lookups reuse them.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  Histogram& histogram(const std::string& name, MachineId machine,
                       std::vector<double> bounds);

  /// Crash semantics (Section 3): zero every metric scoped to `machine` —
  /// its local measurements die with its memory — and bump the
  /// cluster-scoped `cluster.restarts` counter.
  void on_machine_crash(MachineId machine);
  std::uint64_t restarts() const;

  /// Number of registered metrics (all kinds).
  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// One `{"metric",...}` JSON row per metric per line (the structured
  /// sibling of the benches' `{"bench",...}` rows; see docs/observability.md).
  void write_jsonl(std::ostream& os) const;
  /// CSV: name,machine,type,value,count,sum.
  void write_csv(std::ostream& os) const;

 private:
  struct Key {
    std::string name;
    int machine = kClusterScope;
    auto operator<=>(const Key&) const = default;
  };

  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace paso::obs
