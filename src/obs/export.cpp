#include "obs/export.hpp"

#include <cctype>
#include <cstdlib>

namespace paso::obs {

std::string JsonRow::str(const std::string& key) const {
  auto it = strings.find(key);
  return it == strings.end() ? std::string{} : it->second;
}

double JsonRow::num(const std::string& key) const {
  auto it = numbers.find(key);
  return it == numbers.end() ? 0.0 : it->second;
}

std::vector<double> JsonRow::array(const std::string& key) const {
  auto it = arrays.find(key);
  return it == arrays.end() ? std::vector<double>{} : it->second;
}

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) ++i;  // \" and \\ only
    out.push_back(s[i++]);
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

bool parse_number(const std::string& s, std::size_t& i, double& out) {
  const char* begin = s.c_str() + i;
  char* end = nullptr;
  out = std::strtod(begin, &end);
  if (end == begin) return false;
  i += static_cast<std::size_t>(end - begin);
  return true;
}

}  // namespace

std::optional<JsonRow> parse_json_row(const std::string& line) {
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  JsonRow row;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return row;  // empty object
  while (true) {
    skip_ws(line, i);
    std::string key;
    if (!parse_string(line, i, key)) return std::nullopt;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skip_ws(line, i);
    if (i >= line.size()) return std::nullopt;
    if (line[i] == '"') {
      std::string value;
      if (!parse_string(line, i, value)) return std::nullopt;
      row.strings[key] = std::move(value);
    } else if (line[i] == '[') {
      ++i;
      std::vector<double> values;
      skip_ws(line, i);
      if (i < line.size() && line[i] == ']') {
        ++i;
      } else {
        while (true) {
          skip_ws(line, i);
          double v = 0;
          if (!parse_number(line, i, v)) return std::nullopt;
          values.push_back(v);
          skip_ws(line, i);
          if (i >= line.size()) return std::nullopt;
          if (line[i] == ',') {
            ++i;
            continue;
          }
          if (line[i] == ']') {
            ++i;
            break;
          }
          return std::nullopt;
        }
      }
      row.arrays[key] = std::move(values);
    } else {
      double v = 0;
      if (!parse_number(line, i, v)) return std::nullopt;
      row.numbers[key] = v;
    }
    skip_ws(line, i);
    if (i >= line.size()) return std::nullopt;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return row;
    return std::nullopt;
  }
}

std::vector<JsonRow> read_json_rows(std::istream& is) {
  std::vector<JsonRow> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (auto row = parse_json_row(line)) rows.push_back(std::move(*row));
  }
  return rows;
}

}  // namespace paso::obs
