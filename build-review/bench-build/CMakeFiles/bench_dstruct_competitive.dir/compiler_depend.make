# Empty compiler generated dependencies file for bench_dstruct_competitive.
# This may be replaced when dependencies are built.
