file(REMOVE_RECURSE
  "../bench/bench_dstruct_competitive"
  "../bench/bench_dstruct_competitive.pdb"
  "CMakeFiles/bench_dstruct_competitive.dir/bench_dstruct_competitive.cpp.o"
  "CMakeFiles/bench_dstruct_competitive.dir/bench_dstruct_competitive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dstruct_competitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
