# Empty dependencies file for bench_detection_ablation.
# This may be replaced when dependencies are built.
