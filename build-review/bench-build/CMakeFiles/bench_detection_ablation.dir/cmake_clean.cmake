file(REMOVE_RECURSE
  "../bench/bench_detection_ablation"
  "../bench/bench_detection_ablation.pdb"
  "CMakeFiles/bench_detection_ablation.dir/bench_detection_ablation.cpp.o"
  "CMakeFiles/bench_detection_ablation.dir/bench_detection_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
