# Empty dependencies file for bench_doubling_halving.
# This may be replaced when dependencies are built.
