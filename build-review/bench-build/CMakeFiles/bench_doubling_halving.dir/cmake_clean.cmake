file(REMOVE_RECURSE
  "../bench/bench_doubling_halving"
  "../bench/bench_doubling_halving.pdb"
  "CMakeFiles/bench_doubling_halving.dir/bench_doubling_halving.cpp.o"
  "CMakeFiles/bench_doubling_halving.dir/bench_doubling_halving.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_doubling_halving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
