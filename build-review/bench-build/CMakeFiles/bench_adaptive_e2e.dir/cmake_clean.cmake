file(REMOVE_RECURSE
  "../bench/bench_adaptive_e2e"
  "../bench/bench_adaptive_e2e.pdb"
  "CMakeFiles/bench_adaptive_e2e.dir/bench_adaptive_e2e.cpp.o"
  "CMakeFiles/bench_adaptive_e2e.dir/bench_adaptive_e2e.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
