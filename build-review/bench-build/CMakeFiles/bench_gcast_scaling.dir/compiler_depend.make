# Empty compiler generated dependencies file for bench_gcast_scaling.
# This may be replaced when dependencies are built.
