file(REMOVE_RECURSE
  "../bench/bench_gcast_scaling"
  "../bench/bench_gcast_scaling.pdb"
  "CMakeFiles/bench_gcast_scaling.dir/bench_gcast_scaling.cpp.o"
  "CMakeFiles/bench_gcast_scaling.dir/bench_gcast_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gcast_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
