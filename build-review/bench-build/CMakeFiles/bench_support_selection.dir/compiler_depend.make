# Empty compiler generated dependencies file for bench_support_selection.
# This may be replaced when dependencies are built.
