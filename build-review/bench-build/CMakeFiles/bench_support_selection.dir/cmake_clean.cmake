file(REMOVE_RECURSE
  "../bench/bench_support_selection"
  "../bench/bench_support_selection.pdb"
  "CMakeFiles/bench_support_selection.dir/bench_support_selection.cpp.o"
  "CMakeFiles/bench_support_selection.dir/bench_support_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_support_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
