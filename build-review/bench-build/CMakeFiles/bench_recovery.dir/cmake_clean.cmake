file(REMOVE_RECURSE
  "../bench/bench_recovery"
  "../bench/bench_recovery.pdb"
  "CMakeFiles/bench_recovery.dir/bench_recovery.cpp.o"
  "CMakeFiles/bench_recovery.dir/bench_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
