# Empty dependencies file for bench_blocking_ablation.
# This may be replaced when dependencies are built.
