file(REMOVE_RECURSE
  "../bench/bench_blocking_ablation"
  "../bench/bench_blocking_ablation.pdb"
  "CMakeFiles/bench_blocking_ablation.dir/bench_blocking_ablation.cpp.o"
  "CMakeFiles/bench_blocking_ablation.dir/bench_blocking_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocking_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
