file(REMOVE_RECURSE
  "../bench/bench_chaos_overhead"
  "../bench/bench_chaos_overhead.pdb"
  "CMakeFiles/bench_chaos_overhead.dir/bench_chaos_overhead.cpp.o"
  "CMakeFiles/bench_chaos_overhead.dir/bench_chaos_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chaos_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
