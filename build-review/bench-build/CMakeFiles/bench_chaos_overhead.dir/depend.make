# Empty dependencies file for bench_chaos_overhead.
# This may be replaced when dependencies are built.
