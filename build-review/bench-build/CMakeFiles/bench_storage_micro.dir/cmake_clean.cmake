file(REMOVE_RECURSE
  "../bench/bench_storage_micro"
  "../bench/bench_storage_micro.pdb"
  "CMakeFiles/bench_storage_micro.dir/bench_storage_micro.cpp.o"
  "CMakeFiles/bench_storage_micro.dir/bench_storage_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
