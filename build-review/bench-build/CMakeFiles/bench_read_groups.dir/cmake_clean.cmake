file(REMOVE_RECURSE
  "../bench/bench_read_groups"
  "../bench/bench_read_groups.pdb"
  "CMakeFiles/bench_read_groups.dir/bench_read_groups.cpp.o"
  "CMakeFiles/bench_read_groups.dir/bench_read_groups.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_read_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
