# Empty dependencies file for bench_read_groups.
# This may be replaced when dependencies are built.
