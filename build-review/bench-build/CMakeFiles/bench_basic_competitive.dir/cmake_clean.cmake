file(REMOVE_RECURSE
  "../bench/bench_basic_competitive"
  "../bench/bench_basic_competitive.pdb"
  "CMakeFiles/bench_basic_competitive.dir/bench_basic_competitive.cpp.o"
  "CMakeFiles/bench_basic_competitive.dir/bench_basic_competitive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_basic_competitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
