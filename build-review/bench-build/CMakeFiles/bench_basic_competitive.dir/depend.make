# Empty dependencies file for bench_basic_competitive.
# This may be replaced when dependencies are built.
