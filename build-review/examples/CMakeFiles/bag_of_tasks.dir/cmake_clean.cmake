file(REMOVE_RECURSE
  "CMakeFiles/bag_of_tasks.dir/bag_of_tasks.cpp.o"
  "CMakeFiles/bag_of_tasks.dir/bag_of_tasks.cpp.o.d"
  "bag_of_tasks"
  "bag_of_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bag_of_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
