# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bag_of_tasks.
