# Empty dependencies file for bag_of_tasks.
# This may be replaced when dependencies are built.
