file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_kv.dir/fault_tolerant_kv.cpp.o"
  "CMakeFiles/fault_tolerant_kv.dir/fault_tolerant_kv.cpp.o.d"
  "fault_tolerant_kv"
  "fault_tolerant_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
