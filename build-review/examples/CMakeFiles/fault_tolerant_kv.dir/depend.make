# Empty dependencies file for fault_tolerant_kv.
# This may be replaced when dependencies are built.
