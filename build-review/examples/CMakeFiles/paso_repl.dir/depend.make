# Empty dependencies file for paso_repl.
# This may be replaced when dependencies are built.
