file(REMOVE_RECURSE
  "CMakeFiles/paso_repl.dir/paso_repl.cpp.o"
  "CMakeFiles/paso_repl.dir/paso_repl.cpp.o.d"
  "paso_repl"
  "paso_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
