# Empty dependencies file for adaptive_replication.
# This may be replaced when dependencies are built.
