file(REMOVE_RECURSE
  "CMakeFiles/adaptive_replication.dir/adaptive_replication.cpp.o"
  "CMakeFiles/adaptive_replication.dir/adaptive_replication.cpp.o.d"
  "adaptive_replication"
  "adaptive_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
