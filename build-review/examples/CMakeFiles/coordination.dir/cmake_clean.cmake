file(REMOVE_RECURSE
  "CMakeFiles/coordination.dir/coordination.cpp.o"
  "CMakeFiles/coordination.dir/coordination.cpp.o.d"
  "coordination"
  "coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
