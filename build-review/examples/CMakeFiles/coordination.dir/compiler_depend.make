# Empty compiler generated dependencies file for coordination.
# This may be replaced when dependencies are built.
