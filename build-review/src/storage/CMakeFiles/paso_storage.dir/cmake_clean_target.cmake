file(REMOVE_RECURSE
  "libpaso_storage.a"
)
