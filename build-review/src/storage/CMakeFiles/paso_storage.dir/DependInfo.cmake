
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/hash_store.cpp" "src/storage/CMakeFiles/paso_storage.dir/hash_store.cpp.o" "gcc" "src/storage/CMakeFiles/paso_storage.dir/hash_store.cpp.o.d"
  "/root/repo/src/storage/indexed_store.cpp" "src/storage/CMakeFiles/paso_storage.dir/indexed_store.cpp.o" "gcc" "src/storage/CMakeFiles/paso_storage.dir/indexed_store.cpp.o.d"
  "/root/repo/src/storage/ordered_store.cpp" "src/storage/CMakeFiles/paso_storage.dir/ordered_store.cpp.o" "gcc" "src/storage/CMakeFiles/paso_storage.dir/ordered_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/paso_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/paso/CMakeFiles/paso_object.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
