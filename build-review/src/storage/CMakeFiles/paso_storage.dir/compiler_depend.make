# Empty compiler generated dependencies file for paso_storage.
# This may be replaced when dependencies are built.
