file(REMOVE_RECURSE
  "CMakeFiles/paso_storage.dir/hash_store.cpp.o"
  "CMakeFiles/paso_storage.dir/hash_store.cpp.o.d"
  "CMakeFiles/paso_storage.dir/indexed_store.cpp.o"
  "CMakeFiles/paso_storage.dir/indexed_store.cpp.o.d"
  "CMakeFiles/paso_storage.dir/ordered_store.cpp.o"
  "CMakeFiles/paso_storage.dir/ordered_store.cpp.o.d"
  "libpaso_storage.a"
  "libpaso_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
