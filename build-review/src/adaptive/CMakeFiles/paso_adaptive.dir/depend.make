# Empty dependencies file for paso_adaptive.
# This may be replaced when dependencies are built.
