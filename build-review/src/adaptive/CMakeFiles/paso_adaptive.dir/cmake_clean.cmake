file(REMOVE_RECURSE
  "CMakeFiles/paso_adaptive.dir/basic_policy.cpp.o"
  "CMakeFiles/paso_adaptive.dir/basic_policy.cpp.o.d"
  "CMakeFiles/paso_adaptive.dir/paging.cpp.o"
  "CMakeFiles/paso_adaptive.dir/paging.cpp.o.d"
  "CMakeFiles/paso_adaptive.dir/support_manager.cpp.o"
  "CMakeFiles/paso_adaptive.dir/support_manager.cpp.o.d"
  "CMakeFiles/paso_adaptive.dir/support_selection.cpp.o"
  "CMakeFiles/paso_adaptive.dir/support_selection.cpp.o.d"
  "libpaso_adaptive.a"
  "libpaso_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
