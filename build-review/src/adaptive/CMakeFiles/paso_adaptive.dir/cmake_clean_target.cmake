file(REMOVE_RECURSE
  "libpaso_adaptive.a"
)
