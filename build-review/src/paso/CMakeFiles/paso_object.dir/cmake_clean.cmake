file(REMOVE_RECURSE
  "CMakeFiles/paso_object.dir/classes.cpp.o"
  "CMakeFiles/paso_object.dir/classes.cpp.o.d"
  "CMakeFiles/paso_object.dir/criteria.cpp.o"
  "CMakeFiles/paso_object.dir/criteria.cpp.o.d"
  "CMakeFiles/paso_object.dir/wire.cpp.o"
  "CMakeFiles/paso_object.dir/wire.cpp.o.d"
  "libpaso_object.a"
  "libpaso_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
