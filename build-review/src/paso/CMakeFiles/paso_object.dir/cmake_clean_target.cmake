file(REMOVE_RECURSE
  "libpaso_object.a"
)
