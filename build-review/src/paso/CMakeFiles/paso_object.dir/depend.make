# Empty dependencies file for paso_object.
# This may be replaced when dependencies are built.
