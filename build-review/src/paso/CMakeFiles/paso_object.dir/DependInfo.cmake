
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paso/classes.cpp" "src/paso/CMakeFiles/paso_object.dir/classes.cpp.o" "gcc" "src/paso/CMakeFiles/paso_object.dir/classes.cpp.o.d"
  "/root/repo/src/paso/criteria.cpp" "src/paso/CMakeFiles/paso_object.dir/criteria.cpp.o" "gcc" "src/paso/CMakeFiles/paso_object.dir/criteria.cpp.o.d"
  "/root/repo/src/paso/wire.cpp" "src/paso/CMakeFiles/paso_object.dir/wire.cpp.o" "gcc" "src/paso/CMakeFiles/paso_object.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/paso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
