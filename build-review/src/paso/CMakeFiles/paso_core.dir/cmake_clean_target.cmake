file(REMOVE_RECURSE
  "libpaso_core.a"
)
