file(REMOVE_RECURSE
  "CMakeFiles/paso_core.dir/batching.cpp.o"
  "CMakeFiles/paso_core.dir/batching.cpp.o.d"
  "CMakeFiles/paso_core.dir/cluster.cpp.o"
  "CMakeFiles/paso_core.dir/cluster.cpp.o.d"
  "CMakeFiles/paso_core.dir/fault_injector.cpp.o"
  "CMakeFiles/paso_core.dir/fault_injector.cpp.o.d"
  "CMakeFiles/paso_core.dir/memory_server.cpp.o"
  "CMakeFiles/paso_core.dir/memory_server.cpp.o.d"
  "CMakeFiles/paso_core.dir/runtime.cpp.o"
  "CMakeFiles/paso_core.dir/runtime.cpp.o.d"
  "libpaso_core.a"
  "libpaso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
