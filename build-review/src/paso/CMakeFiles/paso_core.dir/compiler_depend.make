# Empty compiler generated dependencies file for paso_core.
# This may be replaced when dependencies are built.
