# Empty dependencies file for paso_net.
# This may be replaced when dependencies are built.
