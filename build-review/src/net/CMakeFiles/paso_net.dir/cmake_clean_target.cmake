file(REMOVE_RECURSE
  "libpaso_net.a"
)
