file(REMOVE_RECURSE
  "CMakeFiles/paso_net.dir/bus_network.cpp.o"
  "CMakeFiles/paso_net.dir/bus_network.cpp.o.d"
  "libpaso_net.a"
  "libpaso_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
