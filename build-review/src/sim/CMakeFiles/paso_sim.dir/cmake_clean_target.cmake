file(REMOVE_RECURSE
  "libpaso_sim.a"
)
