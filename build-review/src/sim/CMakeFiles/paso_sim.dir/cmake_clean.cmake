file(REMOVE_RECURSE
  "CMakeFiles/paso_sim.dir/simulator.cpp.o"
  "CMakeFiles/paso_sim.dir/simulator.cpp.o.d"
  "libpaso_sim.a"
  "libpaso_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
