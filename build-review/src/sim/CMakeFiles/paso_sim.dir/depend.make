# Empty dependencies file for paso_sim.
# This may be replaced when dependencies are built.
