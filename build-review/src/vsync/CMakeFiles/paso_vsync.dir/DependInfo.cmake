
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vsync/batcher.cpp" "src/vsync/CMakeFiles/paso_vsync.dir/batcher.cpp.o" "gcc" "src/vsync/CMakeFiles/paso_vsync.dir/batcher.cpp.o.d"
  "/root/repo/src/vsync/group_service.cpp" "src/vsync/CMakeFiles/paso_vsync.dir/group_service.cpp.o" "gcc" "src/vsync/CMakeFiles/paso_vsync.dir/group_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/paso_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/paso_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/paso_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
