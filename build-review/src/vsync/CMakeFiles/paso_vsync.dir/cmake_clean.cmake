file(REMOVE_RECURSE
  "CMakeFiles/paso_vsync.dir/batcher.cpp.o"
  "CMakeFiles/paso_vsync.dir/batcher.cpp.o.d"
  "CMakeFiles/paso_vsync.dir/group_service.cpp.o"
  "CMakeFiles/paso_vsync.dir/group_service.cpp.o.d"
  "libpaso_vsync.a"
  "libpaso_vsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_vsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
