file(REMOVE_RECURSE
  "libpaso_vsync.a"
)
