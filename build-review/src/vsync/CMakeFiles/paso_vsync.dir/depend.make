# Empty dependencies file for paso_vsync.
# This may be replaced when dependencies are built.
