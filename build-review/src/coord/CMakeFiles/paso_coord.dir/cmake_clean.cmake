file(REMOVE_RECURSE
  "CMakeFiles/paso_coord.dir/coord.cpp.o"
  "CMakeFiles/paso_coord.dir/coord.cpp.o.d"
  "libpaso_coord.a"
  "libpaso_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
