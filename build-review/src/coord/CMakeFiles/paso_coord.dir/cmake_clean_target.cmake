file(REMOVE_RECURSE
  "libpaso_coord.a"
)
