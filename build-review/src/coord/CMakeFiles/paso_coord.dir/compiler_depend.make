# Empty compiler generated dependencies file for paso_coord.
# This may be replaced when dependencies are built.
