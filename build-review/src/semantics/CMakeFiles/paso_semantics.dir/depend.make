# Empty dependencies file for paso_semantics.
# This may be replaced when dependencies are built.
