file(REMOVE_RECURSE
  "libpaso_semantics.a"
)
