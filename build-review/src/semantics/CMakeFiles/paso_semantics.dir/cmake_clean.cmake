file(REMOVE_RECURSE
  "CMakeFiles/paso_semantics.dir/checker.cpp.o"
  "CMakeFiles/paso_semantics.dir/checker.cpp.o.d"
  "CMakeFiles/paso_semantics.dir/history.cpp.o"
  "CMakeFiles/paso_semantics.dir/history.cpp.o.d"
  "libpaso_semantics.a"
  "libpaso_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
