file(REMOVE_RECURSE
  "CMakeFiles/paso_analysis.dir/allocation_game.cpp.o"
  "CMakeFiles/paso_analysis.dir/allocation_game.cpp.o.d"
  "CMakeFiles/paso_analysis.dir/multi_machine.cpp.o"
  "CMakeFiles/paso_analysis.dir/multi_machine.cpp.o.d"
  "CMakeFiles/paso_analysis.dir/potential_audit.cpp.o"
  "CMakeFiles/paso_analysis.dir/potential_audit.cpp.o.d"
  "CMakeFiles/paso_analysis.dir/trace_io.cpp.o"
  "CMakeFiles/paso_analysis.dir/trace_io.cpp.o.d"
  "CMakeFiles/paso_analysis.dir/workloads.cpp.o"
  "CMakeFiles/paso_analysis.dir/workloads.cpp.o.d"
  "libpaso_analysis.a"
  "libpaso_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
