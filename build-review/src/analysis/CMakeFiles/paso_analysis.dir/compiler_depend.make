# Empty compiler generated dependencies file for paso_analysis.
# This may be replaced when dependencies are built.
