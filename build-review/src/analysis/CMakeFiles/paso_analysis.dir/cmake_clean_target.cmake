file(REMOVE_RECURSE
  "libpaso_analysis.a"
)
