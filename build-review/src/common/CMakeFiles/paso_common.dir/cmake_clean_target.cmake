file(REMOVE_RECURSE
  "libpaso_common.a"
)
