file(REMOVE_RECURSE
  "CMakeFiles/paso_common.dir/logging.cpp.o"
  "CMakeFiles/paso_common.dir/logging.cpp.o.d"
  "CMakeFiles/paso_common.dir/require.cpp.o"
  "CMakeFiles/paso_common.dir/require.cpp.o.d"
  "CMakeFiles/paso_common.dir/rng.cpp.o"
  "CMakeFiles/paso_common.dir/rng.cpp.o.d"
  "libpaso_common.a"
  "libpaso_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paso_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
