# Empty compiler generated dependencies file for paso_common.
# This may be replaced when dependencies are built.
