# Empty dependencies file for adaptive_policy_test.
# This may be replaced when dependencies are built.
