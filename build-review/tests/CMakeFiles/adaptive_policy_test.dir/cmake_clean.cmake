file(REMOVE_RECURSE
  "CMakeFiles/adaptive_policy_test.dir/adaptive_policy_test.cpp.o"
  "CMakeFiles/adaptive_policy_test.dir/adaptive_policy_test.cpp.o.d"
  "adaptive_policy_test"
  "adaptive_policy_test.pdb"
  "adaptive_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
