# Empty dependencies file for blocking_property_test.
# This may be replaced when dependencies are built.
