file(REMOVE_RECURSE
  "CMakeFiles/blocking_property_test.dir/blocking_property_test.cpp.o"
  "CMakeFiles/blocking_property_test.dir/blocking_property_test.cpp.o.d"
  "blocking_property_test"
  "blocking_property_test.pdb"
  "blocking_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
