# Empty dependencies file for criteria_test.
# This may be replaced when dependencies are built.
