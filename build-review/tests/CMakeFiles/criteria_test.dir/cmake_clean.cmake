file(REMOVE_RECURSE
  "CMakeFiles/criteria_test.dir/criteria_test.cpp.o"
  "CMakeFiles/criteria_test.dir/criteria_test.cpp.o.d"
  "criteria_test"
  "criteria_test.pdb"
  "criteria_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criteria_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
