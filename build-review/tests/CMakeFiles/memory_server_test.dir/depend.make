# Empty dependencies file for memory_server_test.
# This may be replaced when dependencies are built.
