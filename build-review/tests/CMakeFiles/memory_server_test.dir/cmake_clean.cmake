file(REMOVE_RECURSE
  "CMakeFiles/memory_server_test.dir/memory_server_test.cpp.o"
  "CMakeFiles/memory_server_test.dir/memory_server_test.cpp.o.d"
  "memory_server_test"
  "memory_server_test.pdb"
  "memory_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
