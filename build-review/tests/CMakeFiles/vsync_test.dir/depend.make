# Empty dependencies file for vsync_test.
# This may be replaced when dependencies are built.
