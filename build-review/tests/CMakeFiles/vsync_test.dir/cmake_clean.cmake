file(REMOVE_RECURSE
  "CMakeFiles/vsync_test.dir/vsync_test.cpp.o"
  "CMakeFiles/vsync_test.dir/vsync_test.cpp.o.d"
  "vsync_test"
  "vsync_test.pdb"
  "vsync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
