file(REMOVE_RECURSE
  "CMakeFiles/support_selection_test.dir/support_selection_test.cpp.o"
  "CMakeFiles/support_selection_test.dir/support_selection_test.cpp.o.d"
  "support_selection_test"
  "support_selection_test.pdb"
  "support_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
