# Empty dependencies file for support_selection_test.
# This may be replaced when dependencies are built.
