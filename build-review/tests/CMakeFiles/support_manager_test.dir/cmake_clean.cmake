file(REMOVE_RECURSE
  "CMakeFiles/support_manager_test.dir/support_manager_test.cpp.o"
  "CMakeFiles/support_manager_test.dir/support_manager_test.cpp.o.d"
  "support_manager_test"
  "support_manager_test.pdb"
  "support_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
