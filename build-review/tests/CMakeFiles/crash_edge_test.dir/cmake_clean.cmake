file(REMOVE_RECURSE
  "CMakeFiles/crash_edge_test.dir/crash_edge_test.cpp.o"
  "CMakeFiles/crash_edge_test.dir/crash_edge_test.cpp.o.d"
  "crash_edge_test"
  "crash_edge_test.pdb"
  "crash_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
