# Empty compiler generated dependencies file for crash_edge_test.
# This may be replaced when dependencies are built.
