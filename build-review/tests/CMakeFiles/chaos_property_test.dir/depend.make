# Empty dependencies file for chaos_property_test.
# This may be replaced when dependencies are built.
