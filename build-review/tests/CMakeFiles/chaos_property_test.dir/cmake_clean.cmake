file(REMOVE_RECURSE
  "CMakeFiles/chaos_property_test.dir/chaos_property_test.cpp.o"
  "CMakeFiles/chaos_property_test.dir/chaos_property_test.cpp.o.d"
  "chaos_property_test"
  "chaos_property_test.pdb"
  "chaos_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaos_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
