file(REMOVE_RECURSE
  "CMakeFiles/paging_test.dir/paging_test.cpp.o"
  "CMakeFiles/paging_test.dir/paging_test.cpp.o.d"
  "paging_test"
  "paging_test.pdb"
  "paging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
