# Empty compiler generated dependencies file for paging_test.
# This may be replaced when dependencies are built.
