# Empty compiler generated dependencies file for allocation_game_test.
# This may be replaced when dependencies are built.
