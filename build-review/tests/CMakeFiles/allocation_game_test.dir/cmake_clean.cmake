file(REMOVE_RECURSE
  "CMakeFiles/allocation_game_test.dir/allocation_game_test.cpp.o"
  "CMakeFiles/allocation_game_test.dir/allocation_game_test.cpp.o.d"
  "allocation_game_test"
  "allocation_game_test.pdb"
  "allocation_game_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
