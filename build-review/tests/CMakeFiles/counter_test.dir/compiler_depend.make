# Empty compiler generated dependencies file for counter_test.
# This may be replaced when dependencies are built.
