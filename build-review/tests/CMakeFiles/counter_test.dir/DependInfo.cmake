
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/counter_test.cpp" "tests/CMakeFiles/counter_test.dir/counter_test.cpp.o" "gcc" "tests/CMakeFiles/counter_test.dir/counter_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/analysis/CMakeFiles/paso_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/adaptive/CMakeFiles/paso_adaptive.dir/DependInfo.cmake"
  "/root/repo/build-review/src/coord/CMakeFiles/paso_coord.dir/DependInfo.cmake"
  "/root/repo/build-review/src/paso/CMakeFiles/paso_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/semantics/CMakeFiles/paso_semantics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/storage/CMakeFiles/paso_storage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vsync/CMakeFiles/paso_vsync.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/paso_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/paso_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/paso/CMakeFiles/paso_object.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/paso_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
