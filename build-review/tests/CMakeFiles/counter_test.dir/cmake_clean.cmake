file(REMOVE_RECURSE
  "CMakeFiles/counter_test.dir/counter_test.cpp.o"
  "CMakeFiles/counter_test.dir/counter_test.cpp.o.d"
  "counter_test"
  "counter_test.pdb"
  "counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
