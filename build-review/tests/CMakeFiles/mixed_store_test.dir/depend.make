# Empty dependencies file for mixed_store_test.
# This may be replaced when dependencies are built.
