file(REMOVE_RECURSE
  "CMakeFiles/mixed_store_test.dir/mixed_store_test.cpp.o"
  "CMakeFiles/mixed_store_test.dir/mixed_store_test.cpp.o.d"
  "mixed_store_test"
  "mixed_store_test.pdb"
  "mixed_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
