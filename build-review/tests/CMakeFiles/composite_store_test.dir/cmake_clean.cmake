file(REMOVE_RECURSE
  "CMakeFiles/composite_store_test.dir/composite_store_test.cpp.o"
  "CMakeFiles/composite_store_test.dir/composite_store_test.cpp.o.d"
  "composite_store_test"
  "composite_store_test.pdb"
  "composite_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
