# Empty dependencies file for composite_store_test.
# This may be replaced when dependencies are built.
