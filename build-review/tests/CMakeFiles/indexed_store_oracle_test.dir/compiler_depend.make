# Empty compiler generated dependencies file for indexed_store_oracle_test.
# This may be replaced when dependencies are built.
