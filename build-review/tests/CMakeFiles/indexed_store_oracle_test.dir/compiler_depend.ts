# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for indexed_store_oracle_test.
