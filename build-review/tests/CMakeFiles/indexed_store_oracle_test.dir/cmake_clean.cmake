file(REMOVE_RECURSE
  "CMakeFiles/indexed_store_oracle_test.dir/indexed_store_oracle_test.cpp.o"
  "CMakeFiles/indexed_store_oracle_test.dir/indexed_store_oracle_test.cpp.o.d"
  "indexed_store_oracle_test"
  "indexed_store_oracle_test.pdb"
  "indexed_store_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_store_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
