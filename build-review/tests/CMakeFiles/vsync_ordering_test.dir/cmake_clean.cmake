file(REMOVE_RECURSE
  "CMakeFiles/vsync_ordering_test.dir/vsync_ordering_test.cpp.o"
  "CMakeFiles/vsync_ordering_test.dir/vsync_ordering_test.cpp.o.d"
  "vsync_ordering_test"
  "vsync_ordering_test.pdb"
  "vsync_ordering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vsync_ordering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
