# Empty dependencies file for vsync_ordering_test.
# This may be replaced when dependencies are built.
