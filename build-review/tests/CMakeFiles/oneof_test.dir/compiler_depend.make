# Empty compiler generated dependencies file for oneof_test.
# This may be replaced when dependencies are built.
