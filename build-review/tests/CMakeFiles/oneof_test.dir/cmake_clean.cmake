file(REMOVE_RECURSE
  "CMakeFiles/oneof_test.dir/oneof_test.cpp.o"
  "CMakeFiles/oneof_test.dir/oneof_test.cpp.o.d"
  "oneof_test"
  "oneof_test.pdb"
  "oneof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
