file(REMOVE_RECURSE
  "CMakeFiles/recovery_state_transfer_test.dir/recovery_state_transfer_test.cpp.o"
  "CMakeFiles/recovery_state_transfer_test.dir/recovery_state_transfer_test.cpp.o.d"
  "recovery_state_transfer_test"
  "recovery_state_transfer_test.pdb"
  "recovery_state_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_state_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
