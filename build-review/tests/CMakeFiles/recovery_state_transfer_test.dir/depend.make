# Empty dependencies file for recovery_state_transfer_test.
# This may be replaced when dependencies are built.
